"""Public entry points for the collective write.

Two levels:

* :func:`collective_write` — the MPI-style per-rank call (a generator run
  inside a simulated rank program), analogous to ``MPI_File_write_all``
  with the fcoll component chosen by ``algorithm``/``shuffle``.
* :func:`run_collective_write` — one call that builds the world, runs the
  collective write for a given :class:`RunSpec`, optionally verifies the
  resulting file byte-for-byte, and returns a
  :class:`CollectiveWriteResult`.

The :class:`RunSpec` dataclass is the primary way to describe a run::

    spec = RunSpec(cluster=crill(), fs=beegfs_crill(), nprocs=16,
                   views=views, algorithm="write_comm2", trace=True)
    result = run_collective_write(spec)
    result.overlap_efficiency()      # fraction of write time hidden

The pre-RunSpec keyword signature still works but emits a
``DeprecationWarning``.
"""

from __future__ import annotations

import hashlib
import os
import sys
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, ClassVar

import numpy as np

from repro.collio.aggregation import elect_leaders, select_aggregators
from repro.collio.config import CollectiveConfig
from repro.collio.context import AlgoContext
from repro.collio.domains import partition_domains
from repro.collio.intranode import TwoLayerShuffle
from repro.collio.overlap import ALGORITHMS, make_algorithm
from repro.collio.plan import (
    TwoLayerPlan,
    TwoPhasePlan,
    cached_plan,
    plan_content_key,
    store_plan,
)
from repro.collio.shuffle import SHUFFLE_PRIMITIVES, make_shuffle
from repro.collio.view import FileView
from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.faults.spec import FaultSpec
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.mpi.world import World
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder
from repro.specbase import SpecBase

__all__ = [
    "CollectiveWriteResult",
    "RunSpec",
    "build_plan",
    "collective_write",
    "default_data",
    "run_collective_write",
]


def default_data(rank: int, nbytes: int) -> np.ndarray:
    """Deterministic, rank-distinguishable payload bytes.

    Byte ``i`` is ``(i * 31 + rank * 65537) % 251``.  Because 31 and 251
    are coprime, the sequence over ``i`` is periodic with period 251, so
    it is materialized by tiling one precomputed period instead of
    running the modular arithmetic over a full-length ``int64`` arange
    (which cost two transient ``8 * nbytes`` arrays per rank and
    dominated payload-carrying benchmark runs).
    """
    period = ((np.arange(251, dtype=np.int64) * 31 + rank * 65537) % 251).astype(np.uint8)
    reps = -(-nbytes // 251)  # ceil
    return np.tile(period, reps)[:nbytes]


@dataclass(frozen=True)
class RunSpec(SpecBase):
    """Complete description of one simulated collective write.

    Groups the scenario (cluster, file system, ranks, views), the
    algorithm choice, fault/retry behaviour and observability options
    that used to travel as ~16 loose keyword arguments.  Frozen so specs
    can be shared, cached and varied safely with :meth:`replace`, and a
    :class:`~repro.specbase.SpecBase`, so it serializes
    (``to_dict``/``to_json``) and hashes canonically (``spec_sha256``).
    A prebuilt ``plan`` is derived state and is not serialized.
    """

    _transient: ClassVar[frozenset[str]] = frozenset({"plan"})

    cluster: ClusterSpec
    fs: FsSpec
    nprocs: int
    views: dict[int, FileView]
    data_factory: Callable[[int, int], np.ndarray] = default_data
    algorithm: str = "write_overlap"
    shuffle: str = "two_sided"
    config: CollectiveConfig | None = None
    #: Shorthand for ``config.with_(two_layer=...)``: two-layer intra-node
    #: aggregation (True/False/"auto"); None keeps the config's setting.
    two_layer: bool | str | None = None
    seed: int = DEFAULT_SEED
    verify: bool = False
    #: False = size-only mode (identical timing, no payload bytes move).
    carry_data: bool = True
    plan: TwoPhasePlan | None = None
    path: str = "/collective.out"
    faults: FaultSpec | None = None
    #: Shorthand for ``config.with_(retry=...)``.
    retry: RetryPolicy | None = None
    #: Shorthand for ``config.with_(staging=...)``: the node-local
    #: burst-buffer tier (a :class:`~repro.staging.spec.StagingSpec`);
    #: None keeps the config's setting.
    staging: Any = None
    #: Tunables of the crash-recovery loop (a
    #: :class:`~repro.recovery.spec.RecoverySpec`); only consulted when
    #: ``faults`` has crash-class rates.  ``None`` = defaults.  Typed
    #: loosely because collio must not import the recovery layer above it.
    recovery: Any = None
    auto_cache_dir: str | None = None
    #: Record span timelines (exportable as a Chrome trace; see repro.obs).
    trace: bool = False
    #: Ring-buffer bound for trace records/spans (None = unbounded).
    max_trace_records: int | None = None

    def validate(self) -> "RunSpec":
        """Check cross-field consistency; returns self for chaining."""
        if self.nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {self.nprocs}")
        if set(self.views) != set(range(self.nprocs)):
            raise ConfigurationError("views must cover exactly ranks 0..nprocs-1")
        if self.algorithm != "auto" and self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {sorted(ALGORITHMS)} or 'auto'"
            )
        if self.shuffle not in SHUFFLE_PRIMITIVES:
            raise ConfigurationError(
                f"unknown shuffle {self.shuffle!r}; known: {sorted(SHUFFLE_PRIMITIVES)}"
            )
        if self.two_layer not in (None, True, False, "auto"):
            raise ConfigurationError(
                f"two_layer must be True, False, 'auto' or None, got {self.two_layer!r}"
            )
        if self.staging is not None:
            from repro.staging.spec import StagingSpec  # local: layering

            if not isinstance(self.staging, StagingSpec):
                raise ConfigurationError(
                    f"staging must be a StagingSpec or None, "
                    f"got {type(self.staging).__name__}"
                )
        config = self.config or CollectiveConfig()
        if (self.verify or config.verify) and not self.carry_data:
            raise ConfigurationError("verify=True requires carry_data=True")
        if (
            config.integrity is not None
            and config.integrity.enabled
            and not self.carry_data
        ):
            raise ConfigurationError(
                "integrity checking requires carry_data=True "
                "(checksums need real payload bytes)"
            )
        if self.max_trace_records is not None and self.max_trace_records < 1:
            raise ConfigurationError(
                f"max_trace_records must be >= 1 or None, got {self.max_trace_records}"
            )
        return self

    def replace(self, **overrides: Any) -> "RunSpec":
        """A copy with the given fields replaced (the spec is frozen)."""
        return replace(self, **overrides)

    def resolved_config(self) -> CollectiveConfig:
        """The effective config: defaults applied, shorthands folded in."""
        config = self.config or CollectiveConfig()
        if self.retry is not None:
            config = config.with_(retry=self.retry)
        if self.two_layer is not None:
            config = config.with_(two_layer=self.two_layer)
        if self.staging is not None:
            config = config.with_(staging=self.staging)
        return config


#: Legacy positional order of the pre-RunSpec signature (shim support).
_LEGACY_POSITIONAL = (
    "cluster", "fs", "nprocs", "views", "data_factory", "algorithm",
    "shuffle", "config", "seed", "verify", "carry_data", "plan", "path",
    "faults", "retry", "auto_cache_dir",
)
#: Old keyword spellings that were renamed in RunSpec.
_LEGACY_RENAMES = {"cluster_spec": "cluster", "fs_spec": "fs"}

#: Call sites (file, line) that already received the legacy deprecation
#: warning — each site warns once, so a sweep looping over the shim does
#: not drown its own output.
_LEGACY_WARNED_SITES: set[tuple[str, int]] = set()


def _legacy_call_check() -> None:
    """Reject (strict mode) or warn about a legacy loose-argument call.

    ``REPRO_STRICT_API=1`` turns the deprecated calling convention into
    an immediate ``TypeError`` — the migration endgame, and a cheap way
    for a CI job to prove a tree is shim-free.  Otherwise the shim emits
    one ``DeprecationWarning`` per call site pointing at :class:`RunSpec`.
    """
    if os.environ.get("REPRO_STRICT_API", "") not in ("", "0"):
        raise TypeError(
            "REPRO_STRICT_API is set: run_collective_write() requires a "
            "RunSpec; the legacy loose-argument convention is disabled. "
            "Call run_collective_write(RunSpec(...))."
        )
    caller = sys._getframe(2)
    site = (caller.f_code.co_filename, caller.f_lineno)
    if site in _LEGACY_WARNED_SITES:
        return
    _LEGACY_WARNED_SITES.add(site)
    warnings.warn(
        "calling run_collective_write with loose arguments is deprecated; "
        "pass a RunSpec instead: run_collective_write(RunSpec(...))",
        DeprecationWarning,
        stacklevel=3,
    )


def build_plan(
    cluster,
    nprocs: int,
    views: dict[int, FileView],
    config: CollectiveConfig,
    cycle_bytes: int,
    stripe_size: int | None = None,
    exclude_ranks: frozenset[int] = frozenset(),
    two_layer: bool | str | None = None,
) -> TwoPhasePlan:
    """Select aggregators, partition domains and schedule all cycles.

    ``cluster`` is a :class:`~repro.hardware.cluster.Cluster` (only its
    rank placement is used, so a throwaway instance works); the plan is a
    pure data object reusable across repeated runs of the same case.
    ``exclude_ranks`` bars ranks from aggregator duty (crashed ranks
    during recovery failover) without removing them as data senders; it
    equally bars them from intra-node leadership when the plan is
    two-layer.  ``two_layer`` overrides ``config.two_layer`` (None keeps
    it); ``"auto"`` resolves to enabled when the run places at least two
    ranks per used node, where the inter-node message-count win exists.
    Two-layer runs return a :class:`~repro.collio.plan.TwoLayerPlan`.

    Results are served from a process-local content-hash cache (see
    :func:`repro.collio.plan.plan_content_key`): repeated runs and
    tuning trials with identical ingredients skip the partitioning pass
    entirely.
    """
    placement = tuple(cluster.node_of_rank(r) for r in range(nprocs))
    cache_key = plan_content_key(
        views,
        nprocs=nprocs,
        cycle_bytes=int(cycle_bytes),
        stripe_size=stripe_size,
        exclude_ranks=tuple(sorted(exclude_ranks)),
        two_layer=two_layer,
        config=config.cache_key(),
        placement=placement,
    )
    cached = cached_plan(cache_key)
    if cached is not None:
        return cached
    total_bytes = sum(v.total_bytes for v in views.values())
    aggregators = select_aggregators(
        cluster,
        nprocs,
        total_bytes,
        config.cb_buffer_size,
        num_aggregators=config.num_aggregators,
        exclude=exclude_ranks,
    )
    starts = [v.file_range[0] for v in views.values() if v.num_extents]
    ends = [v.file_range[1] for v in views.values() if v.num_extents]
    lo = min(starts) if starts else 0
    hi = max(ends) if ends else 0
    stripe = stripe_size if config.stripe_align_domains else None
    domains = partition_domains(lo, hi, len(aggregators), stripe_size=stripe)
    if two_layer is None:
        two_layer = config.two_layer
    if two_layer == "auto":
        nodes_used = {cluster.node_of_rank(r) for r in range(nprocs)}
        two_layer = nprocs >= 2 * len(nodes_used)
    if two_layer:
        leader_of_rank = elect_leaders(cluster, nprocs, exclude=exclude_ranks)
        plan = TwoLayerPlan.build_two_layer(
            views, aggregators, domains, cycle_bytes, leader_of_rank
        )
    else:
        plan = TwoPhasePlan.build(views, aggregators, domains, cycle_bytes)
    store_plan(cache_key, plan)
    return plan


def collective_write(
    mpi,
    fh,
    view: FileView,
    data: np.ndarray,
    plan: TwoPhasePlan,
    algorithm: str = "write_overlap",
    shuffle: str = "two_sided",
    config: CollectiveConfig | None = None,
    exchange_metadata: bool = True,
):
    """Per-rank collective write (generator; run on **every** rank).

    Returns the rank's :class:`~repro.collio.context.PhaseStats`.
    ``exchange_metadata=False`` skips the planning allgather when the
    caller already performed it (e.g. ``MPIFile.write_all``).
    """
    config = config or CollectiveConfig()
    algo = make_algorithm(algorithm)
    engine = make_shuffle(shuffle)
    if isinstance(plan, TwoLayerPlan):
        engine = TwoLayerShuffle(engine)
    if config.staging is not None and config.staging.enabled:
        # First rank in creates the world's tier; peers reuse it (the
        # same get-or-create pattern ``world.journal`` follows).
        from repro.staging.tier import StagingTier  # local: layering

        StagingTier.ensure(mpi.world, config.staging)
    if config.integrity is not None and config.integrity.enabled:
        from repro.integrity.layer import IntegrityLayer  # local: layering

        IntegrityLayer.ensure(mpi.world, config.integrity)
    ctx = AlgoContext(mpi, fh, plan, view, data, config, nsub=algo.nsub)
    # Planning phase: exchange view metadata (cost model; the plan itself
    # is precomputed deterministically, as every rank would compute the
    # same partitioning from the gathered metadata).
    if exchange_metadata:
        yield from mpi.allgather(None, nbytes=view.num_extents * config.meta_bytes_per_extent)
    yield from engine.setup(ctx)
    t0 = mpi.now
    algo_span = ctx.recorder.begin(
        t0, algorithm, "algo", rank=mpi.rank, shuffle=shuffle,
        cycles=plan.num_cycles,
    )
    yield from algo.run(ctx, engine)
    yield from ctx.staging_flush()
    yield from ctx.integrity_scrub()
    ctx.stats.add_time("total", mpi.now - t0)
    yield from mpi.barrier()
    ctx.recorder.end(algo_span, mpi.now)
    ctx.stats.add_time("total_with_barrier", mpi.now - t0)
    return ctx.stats


@dataclass
class CollectiveWriteResult:
    """Outcome of one simulated collective write."""

    algorithm: str
    shuffle: str
    nprocs: int
    num_aggregators: int
    num_cycles: int
    cycle_bytes: int
    total_bytes: int
    #: End-to-end simulated wall time of the collective write, seconds.
    elapsed: float
    #: Effective write bandwidth (total bytes / elapsed), bytes/s.
    write_bandwidth: float
    per_rank_stats: list = field(default_factory=list)
    verified: bool | None = None
    #: SHA-256 of the actual file bytes read back from the simulated PFS
    #: (set by verification runs; None when ``verify`` was off).
    file_sha256: str | None = None
    #: Snapshot of the world tracer's always-on counters after the run
    #: (``fault.*`` injections, ``retry.*`` recoveries, protocol events).
    trace_counters: dict = field(default_factory=dict)
    #: Closed spans recorded during the run (``RunSpec(trace=True)`` only).
    spans: list = field(default_factory=list, repr=False)
    #: :meth:`MetricsRegistry.snapshot` of run metrics (counters merged
    #: with engine statistics, gauges, span-duration histograms).
    metrics: dict = field(default_factory=dict, repr=False)
    #: :class:`~repro.recovery.report.RecoveryReport` when the run went
    #: through the crash-recovery manager; None for plain runs.
    recovery: Any = None
    #: :meth:`repro.integrity.layer.IntegrityLayer.snapshot` when the run
    #: checksummed its datapath (mode, detection/repair counts, scrub
    #: reports); None when integrity was off.
    integrity: Any = None

    def phase_time(self, phase: str, rank: int | None = None) -> float:
        """Max (or one rank's) accumulated time in a phase."""
        if rank is not None:
            return self.per_rank_stats[rank].time_in(phase)
        return max(s.time_in(phase) for s in self.per_rank_stats)

    def aggregate_counter(self, counter: str) -> int:
        return sum(s.counters.get(counter, 0) for s in self.per_rank_stats)

    def overlap_report(self):
        """Overlap analysis of the recorded spans (needs ``trace=True``)."""
        from repro.obs.overlap import overlap_report

        return overlap_report(self.spans)

    def overlap_efficiency(self) -> float:
        """Fraction of write time hidden under in-flight shuffles."""
        return self.overlap_report().efficiency


def run_collective_write(spec: RunSpec = None, *args: Any, **kwargs: Any) -> CollectiveWriteResult:
    """Build a world, run one collective write, return timing (and verify).

    The primary signature takes a single :class:`RunSpec`::

        run_collective_write(RunSpec(cluster=..., fs=..., nprocs=..., views=...))

    ``spec.views`` maps every rank to its :class:`FileView`;
    ``spec.data_factory(rank, nbytes)`` produces each rank's payload.

    ``carry_data=False`` runs in size-only mode: every transfer and write
    carries only its byte count, producing *identical simulated timing*
    (all time costs derive from the plan's sizes and piece counts) without
    touching the host's memory bus — the mode the large benchmark sweeps
    use.  Verification requires real payloads, so it is incompatible with
    ``verify=True``.

    ``faults`` injects deterministic failures (see
    :class:`~repro.faults.spec.FaultSpec`); ``retry`` wraps the
    file-access phase in a :class:`~repro.faults.retry.RetryPolicy`
    (shorthand for ``config.with_(retry=...)``).  Injection decisions
    draw from seeded streams, so a faulty run is reproducible from
    ``(faults, seed)`` alone.

    ``algorithm="auto"`` asks the tuner to pick: the candidate overlap
    algorithms are raced once each on these exact views (size-only
    simulations sharing this call's seed) and the winner runs the real
    write.  The returned result reports the *chosen* algorithm, and its
    ``trace_counters`` gain ``tune.auto_select`` / ``tune.auto_trials``
    (or ``tune.auto_cache_hit`` when ``auto_cache_dir`` holds a
    previously cached decision for this workload shape).

    ``trace=True`` records span timelines: the result's ``spans`` feed
    :func:`repro.obs.export.chrome_trace` and
    :meth:`CollectiveWriteResult.overlap_report`.

    The pre-RunSpec calling convention — loose positional/keyword
    arguments, with ``cluster_spec``/``fs_spec`` spellings — still works
    but emits a ``DeprecationWarning`` (once per call site).  Setting
    ``REPRO_STRICT_API=1`` in the environment disables the shim: legacy
    calls then raise ``TypeError`` immediately.
    """
    if isinstance(spec, RunSpec):
        if args or kwargs:
            raise TypeError(
                "run_collective_write(spec) takes no further arguments; "
                "use RunSpec.replace(...) to vary a spec"
            )
        return _run(spec)
    # Legacy shim: map the old positional order / keyword spellings.
    _legacy_call_check()
    positional = args if spec is None else (spec, *args)
    if len(positional) > len(_LEGACY_POSITIONAL):
        raise TypeError(f"too many positional arguments ({len(positional)})")
    mapped = dict(zip(_LEGACY_POSITIONAL, positional))
    for key, value in kwargs.items():
        name = _LEGACY_RENAMES.get(key, key)
        if name in mapped:
            raise TypeError(f"duplicate argument {key!r}")
        mapped[name] = value
    known = {f.name for f in fields(RunSpec)}
    unknown = sorted(set(mapped) - known)
    if unknown:
        raise TypeError(f"unknown argument(s): {', '.join(unknown)}")
    return _run(RunSpec(**mapped))


def _run(spec: RunSpec) -> CollectiveWriteResult:
    """Execute a validated :class:`RunSpec`."""
    spec.validate()
    config = spec.resolved_config()
    algorithm = spec.algorithm
    auto_counters: dict | None = None
    if algorithm == "auto":
        # Imported here: repro.tune is a layer *above* collio.
        from repro.tune.api import select_algorithm

        algorithm, auto_counters = select_algorithm(
            spec.cluster, spec.fs, spec.nprocs, spec.views, config=config,
            shuffle=spec.shuffle, seed=spec.seed, cache_dir=spec.auto_cache_dir,
        )
    if spec.faults is not None and spec.faults.has_permanent:
        # Crash-class faults need the restart-from-journal loop, which
        # lives a layer above collio — hence the local import.
        from repro.recovery.manager import run_with_recovery

        return run_with_recovery(spec, algorithm, config, auto_counters)
    recorder = (
        SpanRecorder(enabled=True, max_records=spec.max_trace_records)
        if spec.trace
        else None
    )
    world = World(
        spec.cluster, spec.nprocs, fs_spec=spec.fs, seed=spec.seed,
        faults=spec.faults, tracer=recorder,
    )
    algo = make_algorithm(algorithm)
    plan = spec.plan
    if plan is None:
        plan = build_plan(
            world.cluster, spec.nprocs, spec.views, config,
            algo.cycle_bytes(config.cb_buffer_size),
            stripe_size=spec.fs.stripe_size,
        )
    elif plan.cycle_bytes != algo.cycle_bytes(config.cb_buffer_size):
        raise ConfigurationError(
            f"supplied plan has cycle_bytes={plan.cycle_bytes}, but algorithm "
            f"{algorithm!r} needs {algo.cycle_bytes(config.cb_buffer_size)}"
        )
    payloads = {
        r: spec.data_factory(r, spec.views[r].total_bytes) if spec.carry_data else None
        for r in range(spec.nprocs)
    }

    def program(mpi):
        fh = yield from mpi.file_open(spec.path)
        stats = yield from collective_write(
            mpi, fh, spec.views[mpi.rank], payloads[mpi.rank], plan,
            algorithm=algorithm, shuffle=spec.shuffle, config=config,
        )
        return stats

    t_start = world.now
    stats = world.run(program)
    elapsed = world.now - t_start
    result = CollectiveWriteResult(
        algorithm=algorithm,
        shuffle=spec.shuffle,
        nprocs=spec.nprocs,
        num_aggregators=len(plan.aggregators),
        num_cycles=plan.num_cycles,
        cycle_bytes=plan.cycle_bytes,
        total_bytes=plan.total_bytes,
        elapsed=elapsed,
        write_bandwidth=plan.total_bytes / elapsed if elapsed > 0 else 0.0,
        per_rank_stats=stats,
        trace_counters=dict(world.cluster.tracer.counters),
    )
    if auto_counters:
        result.trace_counters.update(auto_counters)
    if world.integrity is not None:
        result.integrity = world.integrity.snapshot()
    if recorder is not None:
        result.spans = recorder.closed_spans()
    result.metrics = _run_metrics(world, result, auto_counters).snapshot()
    if spec.verify or config.verify:
        result.verified, result.file_sha256 = _verify_file(
            world, spec.path, spec.views, payloads
        )
    return result


def _run_metrics(
    world: World, result: CollectiveWriteResult, auto_counters: dict | None
) -> MetricsRegistry:
    """Assemble the run's :class:`MetricsRegistry` (counters/gauges/histograms)."""
    registry = MetricsRegistry()
    registry.merge_counters(world.cluster.tracer.counters)
    if auto_counters:
        registry.merge_counters(auto_counters)
    registry.counter("sim.events_processed").inc(world.engine.events_processed)
    registry.gauge("sim.max_heap_len").set(world.engine.max_heap_len)
    registry.gauge("run.elapsed").set(result.elapsed)
    registry.gauge("run.write_bandwidth").set(result.write_bandwidth)
    registry.gauge("fs.bytes_written").set(world.pfs.bytes_written if world.pfs else 0)
    if world.pfs is not None:
        registry.counter("fs.writes_failed").inc(
            sum(t.writes_failed for t in world.pfs.targets)
        )
        registry.counter("fs.writes_rejected").inc(
            sum(t.writes_rejected for t in world.pfs.targets)
        )
        registry.gauge("fs.targets_down").set(
            sum(1 for t in world.pfs.targets if t.down)
        )
    registry.counter("comm.messages_inter_node").inc(
        result.aggregate_counter("messages_inter_node")
    )
    registry.counter("comm.messages_intra_node").inc(
        result.aggregate_counter("messages_intra_node")
    )
    for name, value in world.buffer_pool_counters().items():
        registry.counter(name).inc(value)
    tier = getattr(world, "staging", None)
    if tier is not None:
        for name, value in tier.counter_totals().items():
            registry.counter(name).inc(value)
        registry.gauge("staging.occupancy_peak").set(tier.occupancy_peak())
        registry.gauge("staging.capacity").set(tier.spec.capacity)
        registry.gauge("staging.undrained_bytes").set(tier.undrained_bytes())
    gather_messages = result.aggregate_counter("gather_messages")
    if gather_messages:
        registry.counter("intranode.gather_messages").inc(gather_messages)
        registry.counter("intranode.gather_bytes").inc(
            result.aggregate_counter("gather_bytes")
        )
        registry.counter("intranode.leader_local_copies").inc(
            result.aggregate_counter("gather_local_copies")
        )
    for span in result.spans:
        registry.histogram(f"span.{span.category}.dur").observe(span.dur)
    return registry


def _verify_file(
    world: World,
    path: str,
    views: dict[int, FileView],
    payloads: dict[int, np.ndarray],
) -> tuple[bool, str]:
    """Byte-exact check of the written file against the views' expectation.

    Returns ``(ok, sha256)`` where the hash is of the *actual* file bytes
    read back from the simulated PFS — the identity witness the staging
    acceptance check compares across staging-on/off runs.
    """
    ends = [v.file_range[1] for v in views.values() if v.num_extents]
    size = max(ends) if ends else 0
    expected = np.zeros(size, dtype=np.uint8)
    for rank, view in views.items():
        data = payloads[rank]
        for off, ln, loc in zip(view.offsets, view.lengths, view.local_offsets):
            expected[off : off + ln] = data[loc : loc + ln]
    actual = world.pfs.open(path).read(0, size)
    ok = bool(np.array_equal(actual, expected))
    if not ok:
        bad = np.flatnonzero(actual != expected)
        raise AssertionError(
            f"collective write corrupted the file: {bad.size} wrong bytes, "
            f"first at offset {bad[0] if bad.size else '?'}"
        )
    digest = hashlib.sha256(np.ascontiguousarray(actual).tobytes()).hexdigest()
    return ok, digest
