"""Public entry points for the collective write.

Two levels:

* :func:`collective_write` — the MPI-style per-rank call (a generator run
  inside a simulated rank program), analogous to ``MPI_File_write_all``
  with the fcoll component chosen by ``algorithm``/``shuffle``.
* :func:`run_collective_write` — one call that builds the world, runs the
  collective write for a given set of views, optionally verifies the
  resulting file byte-for-byte, and returns a
  :class:`CollectiveWriteResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collio.aggregation import select_aggregators
from repro.collio.config import CollectiveConfig
from repro.collio.context import AlgoContext
from repro.collio.domains import partition_domains
from repro.collio.overlap import make_algorithm
from repro.collio.plan import TwoPhasePlan
from repro.collio.shuffle import make_shuffle
from repro.collio.view import FileView
from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.faults.spec import FaultSpec
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.mpi.world import World

__all__ = [
    "CollectiveWriteResult",
    "build_plan",
    "collective_write",
    "default_data",
    "run_collective_write",
]


def default_data(rank: int, nbytes: int) -> np.ndarray:
    """Deterministic, rank-distinguishable payload bytes."""
    return ((np.arange(nbytes, dtype=np.int64) * 31 + rank * 65537) % 251).astype(np.uint8)


def build_plan(
    cluster,
    nprocs: int,
    views: dict[int, FileView],
    config: CollectiveConfig,
    cycle_bytes: int,
    stripe_size: int | None = None,
) -> TwoPhasePlan:
    """Select aggregators, partition domains and schedule all cycles.

    ``cluster`` is a :class:`~repro.hardware.cluster.Cluster` (only its
    rank placement is used, so a throwaway instance works); the plan is a
    pure data object reusable across repeated runs of the same case.
    """
    total_bytes = sum(v.total_bytes for v in views.values())
    aggregators = select_aggregators(
        cluster,
        nprocs,
        total_bytes,
        config.cb_buffer_size,
        num_aggregators=config.num_aggregators,
    )
    starts = [v.file_range[0] for v in views.values() if v.num_extents]
    ends = [v.file_range[1] for v in views.values() if v.num_extents]
    lo = min(starts) if starts else 0
    hi = max(ends) if ends else 0
    stripe = stripe_size if config.stripe_align_domains else None
    domains = partition_domains(lo, hi, len(aggregators), stripe_size=stripe)
    return TwoPhasePlan.build(views, aggregators, domains, cycle_bytes)


def collective_write(
    mpi,
    fh,
    view: FileView,
    data: np.ndarray,
    plan: TwoPhasePlan,
    algorithm: str = "write_overlap",
    shuffle: str = "two_sided",
    config: CollectiveConfig | None = None,
    exchange_metadata: bool = True,
):
    """Per-rank collective write (generator; run on **every** rank).

    Returns the rank's :class:`~repro.collio.context.PhaseStats`.
    ``exchange_metadata=False`` skips the planning allgather when the
    caller already performed it (e.g. ``MPIFile.write_all``).
    """
    config = config or CollectiveConfig()
    algo = make_algorithm(algorithm)
    engine = make_shuffle(shuffle)
    ctx = AlgoContext(mpi, fh, plan, view, data, config, nsub=algo.nsub)
    # Planning phase: exchange view metadata (cost model; the plan itself
    # is precomputed deterministically, as every rank would compute the
    # same partitioning from the gathered metadata).
    if exchange_metadata:
        yield from mpi.allgather(None, nbytes=view.num_extents * config.meta_bytes_per_extent)
    yield from engine.setup(ctx)
    t0 = mpi.now
    yield from algo.run(ctx, engine)
    ctx.stats.add_time("total", mpi.now - t0)
    yield from mpi.barrier()
    ctx.stats.add_time("total_with_barrier", mpi.now - t0)
    return ctx.stats


@dataclass
class CollectiveWriteResult:
    """Outcome of one simulated collective write."""

    algorithm: str
    shuffle: str
    nprocs: int
    num_aggregators: int
    num_cycles: int
    cycle_bytes: int
    total_bytes: int
    #: End-to-end simulated wall time of the collective write, seconds.
    elapsed: float
    #: Effective write bandwidth (total bytes / elapsed), bytes/s.
    write_bandwidth: float
    per_rank_stats: list = field(default_factory=list)
    verified: bool | None = None
    #: Snapshot of the world tracer's always-on counters after the run
    #: (``fault.*`` injections, ``retry.*`` recoveries, protocol events).
    trace_counters: dict = field(default_factory=dict)

    def phase_time(self, phase: str, rank: int | None = None) -> float:
        """Max (or one rank's) accumulated time in a phase."""
        if rank is not None:
            return self.per_rank_stats[rank].time_in(phase)
        return max(s.time_in(phase) for s in self.per_rank_stats)

    def aggregate_counter(self, counter: str) -> int:
        return sum(s.counters.get(counter, 0) for s in self.per_rank_stats)


def run_collective_write(
    cluster_spec: ClusterSpec,
    fs_spec: FsSpec,
    nprocs: int,
    views: dict[int, FileView],
    data_factory: Callable[[int, int], np.ndarray] = default_data,
    algorithm: str = "write_overlap",
    shuffle: str = "two_sided",
    config: CollectiveConfig | None = None,
    seed: int = DEFAULT_SEED,
    verify: bool = False,
    carry_data: bool = True,
    plan: TwoPhasePlan | None = None,
    path: str = "/collective.out",
    faults: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
    auto_cache_dir: str | None = None,
) -> CollectiveWriteResult:
    """Build a world, run one collective write, return timing (and verify).

    ``views`` maps every rank to its :class:`FileView`;
    ``data_factory(rank, nbytes)`` produces each rank's payload.

    ``carry_data=False`` runs in size-only mode: every transfer and write
    carries only its byte count, producing *identical simulated timing*
    (all time costs derive from the plan's sizes and piece counts) without
    touching the host's memory bus — the mode the large benchmark sweeps
    use.  Verification requires real payloads, so it is incompatible with
    ``verify=True``.

    ``faults`` injects deterministic failures (see
    :class:`~repro.faults.spec.FaultSpec`); ``retry`` wraps the
    file-access phase in a :class:`~repro.faults.retry.RetryPolicy`
    (shorthand for ``config.with_(retry=...)``).  Injection decisions
    draw from seeded streams, so a faulty run is reproducible from
    ``(faults, seed)`` alone.

    ``algorithm="auto"`` asks the tuner to pick: the candidate overlap
    algorithms are raced once each on these exact views (size-only
    simulations sharing this call's seed) and the winner runs the real
    write.  The returned result reports the *chosen* algorithm, and its
    ``trace_counters`` gain ``tune.auto_select`` / ``tune.auto_trials``
    (or ``tune.auto_cache_hit`` when ``auto_cache_dir`` holds a
    previously cached decision for this workload shape).
    """
    if set(views) != set(range(nprocs)):
        raise ConfigurationError("views must cover exactly ranks 0..nprocs-1")
    config = config or CollectiveConfig()
    if retry is not None:
        config = config.with_(retry=retry)
    if (verify or config.verify) and not carry_data:
        raise ConfigurationError("verify=True requires carry_data=True")
    auto_counters: dict | None = None
    if algorithm == "auto":
        # Imported here: repro.tune is a layer *above* collio.
        from repro.tune.api import select_algorithm

        algorithm, auto_counters = select_algorithm(
            cluster_spec, fs_spec, nprocs, views, config=config,
            shuffle=shuffle, seed=seed, cache_dir=auto_cache_dir,
        )
    world = World(cluster_spec, nprocs, fs_spec=fs_spec, seed=seed, faults=faults)
    algo = make_algorithm(algorithm)
    if plan is None:
        plan = build_plan(
            world.cluster, nprocs, views, config,
            algo.cycle_bytes(config.cb_buffer_size),
            stripe_size=fs_spec.stripe_size,
        )
    elif plan.cycle_bytes != algo.cycle_bytes(config.cb_buffer_size):
        raise ConfigurationError(
            f"supplied plan has cycle_bytes={plan.cycle_bytes}, but algorithm "
            f"{algorithm!r} needs {algo.cycle_bytes(config.cb_buffer_size)}"
        )
    payloads = {
        r: data_factory(r, views[r].total_bytes) if carry_data else None
        for r in range(nprocs)
    }

    def program(mpi):
        fh = yield from mpi.file_open(path)
        stats = yield from collective_write(
            mpi, fh, views[mpi.rank], payloads[mpi.rank], plan,
            algorithm=algorithm, shuffle=shuffle, config=config,
        )
        return stats

    t_start = world.now
    stats = world.run(program)
    elapsed = world.now - t_start
    result = CollectiveWriteResult(
        algorithm=algorithm,
        shuffle=shuffle,
        nprocs=nprocs,
        num_aggregators=len(plan.aggregators),
        num_cycles=plan.num_cycles,
        cycle_bytes=plan.cycle_bytes,
        total_bytes=plan.total_bytes,
        elapsed=elapsed,
        write_bandwidth=plan.total_bytes / elapsed if elapsed > 0 else 0.0,
        per_rank_stats=stats,
        trace_counters=dict(world.cluster.tracer.counters),
    )
    if auto_counters:
        result.trace_counters.update(auto_counters)
    if verify or config.verify:
        result.verified = _verify_file(world, path, views, payloads)
    return result


def _verify_file(
    world: World,
    path: str,
    views: dict[int, FileView],
    payloads: dict[int, np.ndarray],
) -> bool:
    """Byte-exact check of the written file against the views' expectation."""
    ends = [v.file_range[1] for v in views.values() if v.num_extents]
    size = max(ends) if ends else 0
    expected = np.zeros(size, dtype=np.uint8)
    for rank, view in views.items():
        data = payloads[rank]
        for off, ln, loc in zip(view.offsets, view.lengths, view.local_offsets):
            expected[off : off + ln] = data[loc : loc + ln]
    actual = world.pfs.open(path).read(0, size)
    ok = bool(np.array_equal(actual, expected))
    if not ok:
        bad = np.flatnonzero(actual != expected)
        raise AssertionError(
            f"collective write corrupted the file: {bad.size} wrong bytes, "
            f"first at offset {bad[0] if bad.size else '?'}"
        )
    return ok
