"""The three shuffle data-transfer primitives (paper Sec. III-B).

Each engine exposes the paper's ``shuffle_init`` / ``shuffle_wait`` split
(plus blocking ``shuffle`` = init + wait):

:class:`TwoSidedShuffle`
    Non-blocking ``Isend``/``Irecv``.  Senders *pack* their pieces into
    one contiguous message per (aggregator, cycle); aggregators post one
    receive per expected sender and *unpack* (scatter) the received bytes
    into the collective sub-buffer at ``shuffle_wait`` — CPU work charged
    to the aggregator, the busiest rank.  Contributions an aggregator owes
    itself are a local memcpy.

:class:`OneSidedFenceShuffle`
    ``MPI_Put`` with active-target synchronization: a ``Win_fence`` opens
    the epoch in ``shuffle_init`` and a second fence in ``shuffle_wait``
    guarantees completion (paper III-B2a).  Puts go *directly* to their
    final position in the remote sub-buffer — one Put per contiguous
    piece, no pack, no unpack, no matching at the target.

:class:`OneSidedLockShuffle`
    ``MPI_Put`` with passive-target synchronization:
    ``Win_lock(SHARED)`` / puts / ``Win_unlock`` per target, with the
    ``MPI_Barrier`` the paper had to add so (a) aggregators know all
    inbound puts have finished and (b) no origin writes a sub-buffer the
    aggregator is still flushing to disk (paper III-B2b).

Every engine's calls are *collectively balanced*: all ranks execute the
same sequence (with empty bodies when they have no data), so the
collective synchronization inside the RMA variants lines up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.collio.context import AlgoContext
from repro.collio.plan import SendAssignment

__all__ = [
    "ShuffleHandle",
    "TwoSidedShuffle",
    "OneSidedFenceShuffle",
    "OneSidedLockShuffle",
    "SHUFFLE_PRIMITIVES",
    "make_shuffle",
]


@dataclass
class ShuffleHandle:
    """In-flight state of one cycle's shuffle on one rank."""

    cycle: int
    requests: list = field(default_factory=list)
    #: (src_rank, recv_buffer, assignments) tuples to scatter at wait time.
    unpacks: list = field(default_factory=list)
    #: Local (self-contribution) assignments to copy at wait time.
    local_copies: list = field(default_factory=list)
    extra: Any = None
    #: Open "comm" span covering the in-flight shuffle (None when the
    #: recorder is disabled); closed when the cycle's data is placed.
    comm_span: Any = None


def _pack(data: np.ndarray | None, sa: SendAssignment) -> np.ndarray | None:
    """Gather a send assignment's pieces into one contiguous message.

    Returns ``None`` in size-only mode (timing is unchanged; the pack CPU
    cost is charged by the caller either way).
    """
    if data is None:
        return None
    pieces = sa.pieces
    if len(pieces) == 1:
        _, ln, lo = pieces[0]
        return data[lo : lo + ln]  # zero-copy view of the user buffer
    out = np.empty(sa.nbytes, dtype=data.dtype)
    pos = 0
    for _, ln, lo in pieces:
        out[pos : pos + ln] = data[lo : lo + ln]
        pos += ln
    return out


def _scatter(ctx: AlgoContext, cycle: int, sa: SendAssignment, payload: np.ndarray | None) -> None:
    """Place a contribution's pieces at their final sub-buffer positions."""
    if payload is None:
        return
    crange = ctx.plan.cycle_range(sa.agg_index, cycle)
    assert crange is not None
    base = crange[0]
    buf = ctx.buffer(ctx.sub_of_cycle(cycle))
    pos = 0
    for off, ln, _ in sa.pieces:
        lo = off - base
        buf[lo : lo + ln] = payload[pos : pos + ln]
        pos += ln


class TwoSidedShuffle:
    """Non-blocking two-sided shuffle (the production default)."""

    name = "two_sided"
    context_tag = "shuffle"

    def setup(self, ctx: AlgoContext):
        ctx.allocate_buffers()
        return
        yield  # pragma: no cover - makes this a generator

    def init(self, ctx: AlgoContext, cycle: int):
        """Post this cycle's sends and (on aggregators) receives."""
        t0 = ctx.mpi.now
        handle = ShuffleHandle(cycle)
        call_span = None
        if ctx.recorder.active:
            handle.comm_span = ctx.recorder.begin(
                t0, "shuffle", "comm", rank=ctx.rank, cycle=cycle,
                flow="async", engine=self.name,
            )
            call_span = ctx.recorder.begin(
                t0, "shuffle_init", "comm.call", rank=ctx.rank, cycle=cycle
            )
        plan = ctx.plan
        # Receives first, so self-sends (modelled as local copies) and fast
        # eager senders find a posted receive more often — as real
        # aggregator code does.
        if ctx.is_aggregator:
            for exp in plan.recvs_for(ctx.agg_index, cycle):
                if exp.src_rank == ctx.rank:
                    continue
                # Pooled receive buffer (returned after the unpack) — the
                # scatter fully consumes it within this cycle.
                buf = ctx.take_buffer(exp.nbytes)
                req = yield from ctx.mpi.irecv(
                    exp.src_rank, tag=cycle, buffer=buf, size=exp.nbytes,
                    context=self.context_tag,
                )
                handle.requests.append(req)
                handle.unpacks.append((exp.src_rank, buf, req))
        src = ctx.send_source(cycle)
        for sa in plan.sends_for(ctx.rank, cycle):
            agg_rank = plan.aggregators[sa.agg_index]
            if agg_rank == ctx.rank:
                handle.local_copies.append(sa)
                continue
            payload = _pack(src, sa)
            cost = ctx.pack_cost(sa.nbytes, sa.npieces)
            if cost:
                yield from ctx.mpi.compute(cost)
            # Producer-side checksums: computed (or combined from the
            # staging ledger) once here, carried with the message.
            pieces, whole = ctx.piece_checksums_for(cycle, sa, src)
            # readonly: the payload is a view of the rank's frozen data or
            # a single-use pack buffer — the eager path may skip its copy.
            req = yield from ctx.mpi.isend(
                agg_rank, tag=cycle, data=payload, size=sa.nbytes,
                context=self.context_tag, readonly=True,
                checksum=whole, piece_checksums=pieces,
            )
            handle.requests.append(req)
            ctx.stats.bump("messages_sent")
            ctx.note_message(agg_rank, sa.nbytes)
        if call_span is not None:
            ctx.recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle_init", ctx.mpi.now - t0)
        return handle

    def wait(self, ctx: AlgoContext, handle: ShuffleHandle):
        """Complete the cycle's transfers, then unpack at aggregators."""
        t0 = ctx.mpi.now
        call_span = None
        if ctx.recorder.active:
            call_span = ctx.recorder.begin(
                t0, "shuffle_wait", "comm.call", rank=ctx.rank, cycle=handle.cycle
            )
        if handle.requests:
            yield from ctx.mpi.waitall(handle.requests)
        yield from self.finish(ctx, handle)
        if call_span is not None:
            ctx.recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle", ctx.mpi.now - t0)

    def finish(self, ctx: AlgoContext, handle: ShuffleHandle):
        """The post-transfer unpack/scatter step (aggregator CPU)."""
        cycle = handle.cycle
        if handle.unpacks and ctx.is_aggregator:
            by_src = {
                sa_src: [
                    sa
                    for sa in ctx.plan.sends_for(sa_src, cycle)
                    if sa.agg_index == ctx.agg_index
                ]
                for sa_src, _, _ in handle.unpacks
            }
            total_bytes = 0
            total_pieces = 0
            for src, buf, req in handle.unpacks:
                # Piece CRCs the (verified) delivery carried: file them
                # under their file offsets so the extent record can
                # combine instead of re-checksumming the cycle buffer.
                carried = getattr(req.detail, "piece_checksums", None)
                pidx = 0
                pos = 0
                for sa in by_src[src]:
                    payload = buf[pos : pos + sa.nbytes] if buf is not None else None
                    _scatter(ctx, cycle, sa, payload)
                    if carried is not None and pidx + sa.npieces <= len(carried):
                        ctx.file_cycle_checksums(sa, carried[pidx : pidx + sa.npieces])
                    pidx += sa.npieces
                    pos += sa.nbytes
                    total_bytes += sa.nbytes
                    total_pieces += sa.npieces
                ctx.release_buffer(buf)
            cost = ctx.unpack_cost(total_bytes, total_pieces)
            if cost:
                yield from ctx.mpi.compute(cost)
        for sa in handle.local_copies:
            src_arr = ctx.send_source(cycle)
            pieces, _whole = ctx.piece_checksums_for(cycle, sa, src_arr)
            _scatter(ctx, cycle, sa, _pack(src_arr, sa))
            ctx.file_cycle_checksums(sa, pieces)
            yield from ctx.mpi.compute(ctx.local_copy_cost(sa.nbytes, sa.npieces))
        # This cycle's data is now fully placed in the sub-buffer — the
        # in-flight shuffle ends here (covers both the wait() path and
        # write_comm's joint-waitall path, which calls finish() directly).
        if handle.comm_span is not None:
            ctx.recorder.end(handle.comm_span, ctx.mpi.now)
            handle.comm_span = None

    def blocking(self, ctx: AlgoContext, cycle: int):
        handle = yield from self.init(ctx, cycle)
        yield from self.wait(ctx, handle)

    @property
    def combinable(self) -> bool:
        """Whether wait() reduces to a request list (for joint wait_all)."""
        return True


class _OneSidedBase:
    """Common machinery of the Put-based shuffles."""

    def setup(self, ctx: AlgoContext):
        yield from ctx.allocate_windows()

    def _issue_puts(self, ctx: AlgoContext, cycle: int):
        plan = ctx.plan
        win = ctx.window(ctx.sub_of_cycle(cycle))
        src = ctx.send_source(cycle)
        nputs = 0
        for sa in plan.sends_for(ctx.rank, cycle):
            agg_rank = plan.aggregators[sa.agg_index]
            crange = plan.cycle_range(sa.agg_index, cycle)
            assert crange is not None
            base = crange[0]
            for off, ln, loc in sa.pieces:
                piece = src[loc : loc + ln] if src is not None else None
                crc = ctx.staged_piece_crc(cycle, loc, ln) if piece is not None else None
                yield from win.put(
                    agg_rank, piece, off - base, size=ln,
                    checksum=crc, file_offset=off,
                )
                ctx.note_message(agg_rank, ln)
                nputs += 1
        extra = ctx.extra_put_cost(nputs)
        if extra:
            yield from ctx.mpi.compute(extra)
        ctx.stats.bump("puts_issued", nputs)

    def blocking(self, ctx: AlgoContext, cycle: int):
        handle = yield from self.init(ctx, cycle)
        yield from self.wait(ctx, handle)

    def finish(self, ctx: AlgoContext, handle: ShuffleHandle):
        """No unpack needed: puts land in place."""
        return
        yield  # pragma: no cover

    @property
    def combinable(self) -> bool:
        return False


class OneSidedFenceShuffle(_OneSidedBase):
    """Put + ``MPI_Win_fence`` (active-target) shuffle."""

    name = "one_sided_fence"

    def init(self, ctx: AlgoContext, cycle: int):
        t0 = ctx.mpi.now
        handle = ShuffleHandle(cycle)
        recorder = ctx.recorder
        active = recorder.active
        call_span = None
        if active:
            handle.comm_span = recorder.begin(
                t0, "shuffle", "comm", rank=ctx.rank, cycle=cycle,
                flow="async", engine=self.name,
            )
            call_span = recorder.begin(
                t0, "shuffle_init", "comm.call", rank=ctx.rank, cycle=cycle
            )
        win = ctx.window(ctx.sub_of_cycle(cycle))
        # Opening fence: also guarantees the target's previous write on
        # this sub-buffer has completed before any put can land (every
        # rank — including the aggregator — must pass it).
        fence_span = None
        if active:
            fence_span = recorder.begin(
                ctx.mpi.now, "fence", "sync", rank=ctx.rank, cycle=cycle
            )
        yield from win.fence()
        if active:
            recorder.end(fence_span, ctx.mpi.now)
        yield from self._issue_puts(ctx, cycle)
        if call_span is not None:
            recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle_init", ctx.mpi.now - t0)
        return handle

    def wait(self, ctx: AlgoContext, handle: ShuffleHandle):
        t0 = ctx.mpi.now
        recorder = ctx.recorder
        active = recorder.active
        call_span = None
        if active:
            call_span = recorder.begin(
                t0, "shuffle_wait", "comm.call", rank=ctx.rank, cycle=handle.cycle
            )
        win = ctx.window(ctx.sub_of_cycle(handle.cycle))
        fence_span = None
        if active:
            fence_span = recorder.begin(
                ctx.mpi.now, "fence", "sync", rank=ctx.rank, cycle=handle.cycle
            )
        yield from win.fence()
        if active:
            recorder.end(fence_span, ctx.mpi.now)
        if handle.comm_span is not None:
            recorder.end(handle.comm_span, ctx.mpi.now)
            handle.comm_span = None
        if call_span is not None:
            recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle", ctx.mpi.now - t0)
        ctx.stats.bump("fences", 2)


class OneSidedLockShuffle(_OneSidedBase):
    """Put + ``MPI_Win_lock(SHARED)``/``unlock`` (passive-target) shuffle."""

    name = "one_sided_lock"

    def init(self, ctx: AlgoContext, cycle: int):
        t0 = ctx.mpi.now
        handle = ShuffleHandle(cycle)
        recorder = ctx.recorder
        active = recorder.active
        call_span = None
        if active:
            handle.comm_span = recorder.begin(
                t0, "shuffle", "comm", rank=ctx.rank, cycle=cycle,
                flow="async", engine=self.name,
            )
            call_span = recorder.begin(
                t0, "shuffle_init", "comm.call", rank=ctx.rank, cycle=cycle
            )
        # The paper's extra barrier: no origin may put into a sub-buffer
        # before the aggregator finished writing its previous contents.
        # Aggregators reach this barrier only after their write_wait.
        barrier_span = None
        if active:
            barrier_span = recorder.begin(
                ctx.mpi.now, "barrier", "sync", rank=ctx.rank, cycle=cycle
            )
        yield from ctx.mpi.barrier()
        if active:
            recorder.end(barrier_span, ctx.mpi.now)
        plan = ctx.plan
        win = ctx.window(ctx.sub_of_cycle(cycle))
        src = ctx.send_source(cycle)
        targets: dict[int, list[SendAssignment]] = {}
        for sa in plan.sends_for(ctx.rank, cycle):
            targets.setdefault(plan.aggregators[sa.agg_index], []).append(sa)
        nputs = 0
        for agg_rank in sorted(targets):
            epoch_span = None
            if active:
                epoch_span = recorder.begin(
                    ctx.mpi.now, "lock_epoch", "sync", rank=ctx.rank,
                    cycle=cycle, target=agg_rank,
                )
            yield from win.lock(agg_rank, exclusive=False)
            for sa in targets[agg_rank]:
                crange = plan.cycle_range(sa.agg_index, cycle)
                assert crange is not None
                base = crange[0]
                for off, ln, loc in sa.pieces:
                    piece = src[loc : loc + ln] if src is not None else None
                    crc = ctx.staged_piece_crc(cycle, loc, ln) if piece is not None else None
                    yield from win.put(
                        agg_rank, piece, off - base, size=ln,
                        checksum=crc, file_offset=off,
                    )
                    ctx.note_message(agg_rank, ln)
                    nputs += 1
            yield from win.unlock(agg_rank, exclusive=False)
            if epoch_span is not None:
                recorder.end(epoch_span, ctx.mpi.now)
        extra = ctx.extra_put_cost(nputs)
        if extra:
            yield from ctx.mpi.compute(extra)
        ctx.stats.bump("puts_issued", nputs)
        if call_span is not None:
            recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle_init", ctx.mpi.now - t0)
        return handle

    def wait(self, ctx: AlgoContext, handle: ShuffleHandle):
        t0 = ctx.mpi.now
        recorder = ctx.recorder
        active = recorder.active
        call_span = None
        if active:
            call_span = recorder.begin(
                t0, "shuffle_wait", "comm.call", rank=ctx.rank, cycle=handle.cycle
            )
        # Target-side completion knowledge (paper III-B2b).
        barrier_span = None
        if active:
            barrier_span = recorder.begin(
                ctx.mpi.now, "barrier", "sync", rank=ctx.rank, cycle=handle.cycle
            )
        yield from ctx.mpi.barrier()
        if active:
            recorder.end(barrier_span, ctx.mpi.now)
        if handle.comm_span is not None:
            recorder.end(handle.comm_span, ctx.mpi.now)
            handle.comm_span = None
        if call_span is not None:
            recorder.end(call_span, ctx.mpi.now)
        ctx.stats.add_time("shuffle", ctx.mpi.now - t0)
        ctx.stats.bump("barriers", 2)


SHUFFLE_PRIMITIVES = {
    "two_sided": TwoSidedShuffle,
    "one_sided_fence": OneSidedFenceShuffle,
    "one_sided_lock": OneSidedLockShuffle,
}


def make_shuffle(name: str):
    """Instantiate a shuffle primitive by name."""
    try:
        return SHUFFLE_PRIMITIVES[name]()
    except KeyError:
        raise KeyError(
            f"unknown shuffle primitive {name!r}; known: {sorted(SHUFFLE_PRIMITIVES)}"
        ) from None
