"""Cycle planning for the two-phase algorithm.

Given every rank's :class:`~repro.collio.view.FileView`, the aggregator
set and their file domains, the plan answers — for every internal cycle —
*who sends which bytes to which aggregator*, and what each aggregator
writes.  All of it is computed with vectorized numpy passes so that views
with 10^5+ extents stay affordable; the simulated ranks are charged an
analytic planning cost (metadata allgather + per-cycle bookkeeping) when
they execute the plan.

Terminology matches the paper: aggregator ``a``'s *domain* is a contiguous
file range; cycle ``c`` of that domain covers
``[domain_lo + c*cycle_bytes, ...)`` where ``cycle_bytes`` is the
collective buffer size (full buffer for the no-overlap baseline, half a
buffer for the double-buffered overlap algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collio.view import FileView
from repro.errors import ConfigurationError

__all__ = ["SendAssignment", "RecvExpectation", "TwoPhasePlan"]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class SendAssignment:
    """What one rank contributes to one aggregator in one cycle."""

    agg_index: int
    offsets: np.ndarray       # absolute file offsets of the pieces
    lengths: np.ndarray
    local_offsets: np.ndarray  # positions of the pieces in the rank's buffer

    @property
    def nbytes(self) -> int:
        return int(self.lengths.sum())

    @property
    def npieces(self) -> int:
        return len(self.lengths)


@dataclass(frozen=True)
class RecvExpectation:
    """What one aggregator expects from one source rank in one cycle."""

    src_rank: int
    nbytes: int
    npieces: int


class TwoPhasePlan:
    """The full communication/IO schedule of one collective write."""

    def __init__(
        self,
        aggregators: list[int],
        domains: list[tuple[int, int]],
        cycle_bytes: int,
        file_start: int,
        file_end: int,
    ) -> None:
        if len(aggregators) != len(domains):
            raise ConfigurationError("one domain per aggregator required")
        if cycle_bytes < 1:
            raise ConfigurationError("cycle_bytes must be >= 1")
        self.aggregators = list(aggregators)
        self.domains = list(domains)
        self.cycle_bytes = int(cycle_bytes)
        self.file_start = int(file_start)
        self.file_end = int(file_end)
        self.agg_index_of_rank = {r: i for i, r in enumerate(aggregators)}
        self.cycles_per_agg = [
            -(-(hi - lo) // cycle_bytes) if hi > lo else 0 for lo, hi in domains
        ]
        self.num_cycles = max(self.cycles_per_agg, default=0)
        # (rank, cycle) -> [SendAssignment]; (agg_index, cycle) -> [RecvExpectation]
        self._send: dict[tuple[int, int], list[SendAssignment]] = {}
        self._recv: dict[tuple[int, int], list[RecvExpectation]] = {}
        # (agg_index, cycle) -> (write_lo, write_hi)
        self._write_range: dict[tuple[int, int], tuple[int, int]] = {}
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        views: dict[int, FileView],
        aggregators: list[int],
        domains: list[tuple[int, int]],
        cycle_bytes: int,
    ) -> "TwoPhasePlan":
        """Compute the schedule for the given views and partitioning."""
        starts = [v.file_range[0] for v in views.values() if v.num_extents]
        ends = [v.file_range[1] for v in views.values() if v.num_extents]
        file_start = min(starts) if starts else 0
        file_end = max(ends) if ends else 0
        plan = cls(aggregators, domains, cycle_bytes, file_start, file_end)
        for rank, view in views.items():
            if not view.num_extents:
                continue
            plan.total_bytes += view.total_bytes
            vlo, vhi = view.file_range
            for a, (dlo, dhi) in enumerate(domains):
                if dhi <= dlo or vhi <= dlo or vlo >= dhi:
                    continue
                plan._assign(rank, a, view, dlo, dhi)
        return plan

    def _assign(self, rank: int, a: int, view: FileView, dlo: int, dhi: int) -> None:
        offs, lens, locs = view.clip(dlo, dhi)
        if not len(offs):
            return
        cb = self.cycle_bytes
        first_c = (offs - dlo) // cb
        last_c = (offs + lens - 1 - dlo) // cb
        counts = (last_c - first_c + 1).astype(np.int64)
        if int(counts.max()) == 1:
            cyc = first_c
            p_off, p_len, p_loc = offs, lens, locs
        else:
            idx = np.repeat(np.arange(len(offs)), counts)
            group_start = np.cumsum(counts) - counts
            within = np.arange(idx.size) - np.repeat(group_start, counts)
            cyc = first_c[idx] + within
            p_lo = np.maximum(offs[idx], dlo + cyc * cb)
            p_hi = np.minimum(offs[idx] + lens[idx], dlo + (cyc + 1) * cb)
            p_off = p_lo
            p_len = p_hi - p_lo
            p_loc = locs[idx] + (p_lo - offs[idx])
        order = np.argsort(cyc, kind="stable")
        cyc = cyc[order]
        p_off, p_len, p_loc = p_off[order], p_len[order], p_loc[order]
        boundaries = np.flatnonzero(np.diff(cyc)) + 1
        for seg_off, seg_len, seg_loc, seg_cyc in zip(
            np.split(p_off, boundaries),
            np.split(p_len, boundaries),
            np.split(p_loc, boundaries),
            np.split(cyc, boundaries),
        ):
            c = int(seg_cyc[0])
            sa = SendAssignment(a, seg_off, seg_len, seg_loc)
            self._send.setdefault((rank, c), []).append(sa)
            self._recv.setdefault((a, c), []).append(
                RecvExpectation(rank, sa.nbytes, sa.npieces)
            )
            first = int(seg_off[0])
            last = int(seg_off[-1] + seg_len[-1])
            key = (a, c)
            known = self._write_range.get(key)
            if known is None:
                self._write_range[key] = (first, last)
            else:
                self._write_range[key] = (min(known[0], first), max(known[1], last))

    # ------------------------------------------------------------------
    # Queries used by the runtime
    # ------------------------------------------------------------------
    def sends_for(self, rank: int, cycle: int) -> list[SendAssignment]:
        """This rank's contributions in ``cycle`` (possibly empty)."""
        return self._send.get((rank, cycle), [])

    def recvs_for(self, agg_index: int, cycle: int) -> list[RecvExpectation]:
        """What aggregator ``agg_index`` expects in ``cycle``."""
        return self._recv.get((agg_index, cycle), [])

    def cycle_range(self, agg_index: int, cycle: int) -> tuple[int, int] | None:
        """File range of the aggregator's cycle, or None past its domain."""
        if cycle >= self.cycles_per_agg[agg_index]:
            return None
        dlo, dhi = self.domains[agg_index]
        lo = dlo + cycle * self.cycle_bytes
        return (lo, min(lo + self.cycle_bytes, dhi))

    def write_range(self, agg_index: int, cycle: int) -> tuple[int, int] | None:
        """Byte span the aggregator writes in ``cycle`` (None if no data)."""
        return self._write_range.get((agg_index, cycle))

    def is_aggregator(self, rank: int) -> bool:
        return rank in self.agg_index_of_rank

    def metadata_bytes(self, meta_bytes_per_extent: int, views: dict[int, FileView]) -> dict[int, int]:
        """Per-rank view-description bytes exchanged during planning."""
        return {r: v.num_extents * meta_bytes_per_extent for r, v in views.items()}

    # ------------------------------------------------------------------
    # Invariant checks (used by tests and verify mode)
    # ------------------------------------------------------------------
    def check_consistency(self, views: dict[int, FileView]) -> None:
        """Assert the plan exactly covers every view byte once."""
        per_rank_bytes: dict[int, int] = {r: 0 for r in views}
        for (rank, _c), assignments in self._send.items():
            for sa in assignments:
                per_rank_bytes[rank] += sa.nbytes
                lo, hi = self.domains[sa.agg_index]
                rng = self.cycle_range(sa.agg_index, _c)
                assert rng is not None
                clo, chi = rng
                assert (sa.offsets >= max(lo, clo)).all()
                assert (sa.offsets + sa.lengths <= min(hi, chi)).all()
        for rank, view in views.items():
            assert per_rank_bytes[rank] == view.total_bytes, (
                f"rank {rank}: planned {per_rank_bytes[rank]} of {view.total_bytes} bytes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TwoPhasePlan aggs={len(self.aggregators)} cycles={self.num_cycles} "
            f"cycle_bytes={self.cycle_bytes} total={self.total_bytes}>"
        )
