"""Cycle planning for the two-phase algorithm.

Given every rank's :class:`~repro.collio.view.FileView`, the aggregator
set and their file domains, the plan answers — for every internal cycle —
*who sends which bytes to which aggregator*, and what each aggregator
writes.  All of it is computed with vectorized numpy passes so that views
with 10^5+ extents stay affordable; the simulated ranks are charged an
analytic planning cost (metadata allgather + per-cycle bookkeeping) when
they execute the plan.

Terminology matches the paper: aggregator ``a``'s *domain* is a contiguous
file range; cycle ``c`` of that domain covers
``[domain_lo + c*cycle_bytes, ...)`` where ``cycle_bytes`` is the
collective buffer size (full buffer for the no-overlap baseline, half a
buffer for the double-buffered overlap algorithms).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.collio.view import FileView
from repro.errors import ConfigurationError

__all__ = [
    "SendAssignment", "RecvExpectation", "TwoPhasePlan", "TwoLayerPlan",
    "plan_content_key", "cached_plan", "store_plan",
    "plan_cache_stats", "reset_plan_cache",
]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class SendAssignment:
    """What one rank contributes to one aggregator in one cycle.

    ``nbytes``/``npieces``/``pieces`` are cached: an assignment is
    queried several times per cycle (pack, scatter, cost model, message
    accounting), and the flattened Python piece table avoids per-element
    numpy scalar boxing in the put/scatter inner loops.
    """

    agg_index: int
    offsets: np.ndarray       # absolute file offsets of the pieces
    lengths: np.ndarray
    local_offsets: np.ndarray  # positions of the pieces in the rank's buffer

    @cached_property
    def nbytes(self) -> int:
        return int(self.lengths.sum())

    @cached_property
    def npieces(self) -> int:
        return len(self.lengths)

    @cached_property
    def pieces(self) -> list[tuple[int, int, int]]:
        """Flattened ``(file_offset, length, local_offset)`` table."""
        return list(zip(
            self.offsets.tolist(),
            self.lengths.tolist(),
            self.local_offsets.tolist(),
        ))


@dataclass(frozen=True)
class RecvExpectation:
    """What one aggregator expects from one source rank in one cycle."""

    src_rank: int
    nbytes: int
    npieces: int


class TwoPhasePlan:
    """The full communication/IO schedule of one collective write."""

    def __init__(
        self,
        aggregators: list[int],
        domains: list[tuple[int, int]],
        cycle_bytes: int,
        file_start: int,
        file_end: int,
    ) -> None:
        if len(aggregators) != len(domains):
            raise ConfigurationError("one domain per aggregator required")
        if cycle_bytes < 1:
            raise ConfigurationError("cycle_bytes must be >= 1")
        self.aggregators = list(aggregators)
        self.domains = list(domains)
        self.cycle_bytes = int(cycle_bytes)
        self.file_start = int(file_start)
        self.file_end = int(file_end)
        self.agg_index_of_rank = {r: i for i, r in enumerate(aggregators)}
        self.cycles_per_agg = [
            -(-(hi - lo) // cycle_bytes) if hi > lo else 0 for lo, hi in domains
        ]
        self.num_cycles = max(self.cycles_per_agg, default=0)
        # (rank, cycle) -> [SendAssignment]; (agg_index, cycle) -> [RecvExpectation]
        self._send: dict[tuple[int, int], list[SendAssignment]] = {}
        self._recv: dict[tuple[int, int], list[RecvExpectation]] = {}
        # (agg_index, cycle) -> (write_lo, write_hi)
        self._write_range: dict[tuple[int, int], tuple[int, int]] = {}
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        views: dict[int, FileView],
        aggregators: list[int],
        domains: list[tuple[int, int]],
        cycle_bytes: int,
    ) -> "TwoPhasePlan":
        """Compute the schedule for the given views and partitioning."""
        starts = [v.file_range[0] for v in views.values() if v.num_extents]
        ends = [v.file_range[1] for v in views.values() if v.num_extents]
        file_start = min(starts) if starts else 0
        file_end = max(ends) if ends else 0
        plan = cls(aggregators, domains, cycle_bytes, file_start, file_end)
        for rank, view in views.items():
            if not view.num_extents:
                continue
            plan.total_bytes += view.total_bytes
            vlo, vhi = view.file_range
            for a, (dlo, dhi) in enumerate(domains):
                if dhi <= dlo or vhi <= dlo or vlo >= dhi:
                    continue
                plan._assign(rank, a, view, dlo, dhi)
        return plan

    def _assign(self, rank: int, a: int, view: FileView, dlo: int, dhi: int) -> None:
        offs, lens, locs = view.clip(dlo, dhi)
        if not len(offs):
            return
        cb = self.cycle_bytes
        first_c = (offs - dlo) // cb
        last_c = (offs + lens - 1 - dlo) // cb
        counts = (last_c - first_c + 1).astype(np.int64)
        if int(counts.max()) == 1:
            cyc = first_c
            p_off, p_len, p_loc = offs, lens, locs
        else:
            idx = np.repeat(np.arange(len(offs)), counts)
            group_start = np.cumsum(counts) - counts
            within = np.arange(idx.size) - np.repeat(group_start, counts)
            cyc = first_c[idx] + within
            p_lo = np.maximum(offs[idx], dlo + cyc * cb)
            p_hi = np.minimum(offs[idx] + lens[idx], dlo + (cyc + 1) * cb)
            p_off = p_lo
            p_len = p_hi - p_lo
            p_loc = locs[idx] + (p_lo - offs[idx])
        order = np.argsort(cyc, kind="stable")
        cyc = cyc[order]
        p_off, p_len, p_loc = p_off[order], p_len[order], p_loc[order]
        boundaries = np.flatnonzero(np.diff(cyc)) + 1
        for seg_off, seg_len, seg_loc, seg_cyc in zip(
            np.split(p_off, boundaries),
            np.split(p_len, boundaries),
            np.split(p_loc, boundaries),
            np.split(cyc, boundaries),
        ):
            c = int(seg_cyc[0])
            sa = SendAssignment(a, seg_off, seg_len, seg_loc)
            self._send.setdefault((rank, c), []).append(sa)
            self._recv.setdefault((a, c), []).append(
                RecvExpectation(rank, sa.nbytes, sa.npieces)
            )
            first = int(seg_off[0])
            last = int(seg_off[-1] + seg_len[-1])
            key = (a, c)
            known = self._write_range.get(key)
            if known is None:
                self._write_range[key] = (first, last)
            else:
                self._write_range[key] = (min(known[0], first), max(known[1], last))

    # ------------------------------------------------------------------
    # Queries used by the runtime
    # ------------------------------------------------------------------
    def sends_for(self, rank: int, cycle: int) -> list[SendAssignment]:
        """This rank's contributions in ``cycle`` (possibly empty)."""
        return self._send.get((rank, cycle), [])

    def recvs_for(self, agg_index: int, cycle: int) -> list[RecvExpectation]:
        """What aggregator ``agg_index`` expects in ``cycle``."""
        return self._recv.get((agg_index, cycle), [])

    def cycle_range(self, agg_index: int, cycle: int) -> tuple[int, int] | None:
        """File range of the aggregator's cycle, or None past its domain."""
        if cycle >= self.cycles_per_agg[agg_index]:
            return None
        dlo, dhi = self.domains[agg_index]
        lo = dlo + cycle * self.cycle_bytes
        return (lo, min(lo + self.cycle_bytes, dhi))

    def write_range(self, agg_index: int, cycle: int) -> tuple[int, int] | None:
        """Byte span the aggregator writes in ``cycle`` (None if no data)."""
        return self._write_range.get((agg_index, cycle))

    def is_aggregator(self, rank: int) -> bool:
        return rank in self.agg_index_of_rank

    def metadata_bytes(self, meta_bytes_per_extent: int, views: dict[int, FileView]) -> dict[int, int]:
        """Per-rank view-description bytes exchanged during planning."""
        return {r: v.num_extents * meta_bytes_per_extent for r, v in views.items()}

    # ------------------------------------------------------------------
    # Invariant checks (used by tests and verify mode)
    # ------------------------------------------------------------------
    def check_consistency(self, views: dict[int, FileView]) -> None:
        """Assert the plan exactly covers every view byte once."""
        per_rank_bytes: dict[int, int] = {r: 0 for r in views}
        for (rank, _c), assignments in self._send.items():
            for sa in assignments:
                per_rank_bytes[rank] += sa.nbytes
                lo, hi = self.domains[sa.agg_index]
                rng = self.cycle_range(sa.agg_index, _c)
                assert rng is not None
                clo, chi = rng
                assert (sa.offsets >= max(lo, clo)).all()
                assert (sa.offsets + sa.lengths <= min(hi, chi)).all()
        for rank, view in views.items():
            assert per_rank_bytes[rank] == view.total_bytes, (
                f"rank {rank}: planned {per_rank_bytes[rank]} of {view.total_bytes} bytes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TwoPhasePlan aggs={len(self.aggregators)} cycles={self.num_cycles} "
            f"cycle_bytes={self.cycle_bytes} total={self.total_bytes}>"
        )


class TwoLayerPlan(TwoPhasePlan):
    """Two-layer schedule: node-local gather, then inter-node shuffle.

    Layer 1 (*gather*): every rank sends its cycle contributions — one
    contiguous intra-node message per cycle — to its node's elected
    leader, which assembles them in a staging buffer.  Layer 2
    (*forward*): only leaders talk to the global aggregators, each
    sending one coalesced message per (aggregator, cycle) in which
    file-contiguous pieces from different co-resident ranks have been
    merged.  Per cycle the inter-node message count drops from
    O(ranks x aggregators) to O(nodes x aggregators), and the
    aggregator-side unpack handles fewer, larger pieces.

    The inherited query API (:meth:`sends_for` / :meth:`recvs_for`)
    describes the *leader-level* inter-node schedule, so the existing
    shuffle primitives run layer 2 unchanged; the member-level schedule
    that drives layer 1 moves to :meth:`member_sends_for` and the
    ``gather_*`` queries.  Leaders of single-rank nodes are
    *pass-through*: their sends keep the original user-buffer offsets
    and no staging is allocated, so a one-rank-per-node cluster degrades
    to exactly the single-layer schedule.
    """

    @classmethod
    def build_two_layer(
        cls,
        views: dict[int, FileView],
        aggregators: list[int],
        domains: list[tuple[int, int]],
        cycle_bytes: int,
        leader_of_rank: dict[int, int],
    ) -> "TwoLayerPlan":
        """Base schedule first, then the node-local coalescing pass."""
        plan = cls.build(views, aggregators, domains, cycle_bytes)
        plan._layer(leader_of_rank)
        return plan

    # ------------------------------------------------------------------
    def _layer(self, leader_of_rank: dict[int, int]) -> None:
        self.leader_of_rank = dict(leader_of_rank)
        self.leaders = sorted(set(self.leader_of_rank.values()))
        self.members_of_leader: dict[int, list[int]] = {}
        for rank in sorted(self.leader_of_rank):
            self.members_of_leader.setdefault(self.leader_of_rank[rank], []).append(rank)
        #: Leaders that stage (more than one rank on their node); others
        #: pass their own assignments through untouched.
        self.staging_leaders = frozenset(
            lead for lead, members in self.members_of_leader.items() if len(members) > 1
        )
        # The base schedule becomes the member (gather) layer.
        self._member_send = self._send
        self._send = {}
        self._recv = {}
        #: (rank, cycle) -> (bytes, pieces) a member contributes that cycle.
        self._gather_load: dict[tuple[int, int], tuple[int, int]] = {}
        #: (cycle, src_rank) -> staging offsets (int64 array), one per
        #: piece of the member's pack stream, in stream order.
        self._gather_scatter: dict[tuple[int, int], np.ndarray] = {}
        #: leader -> staging bytes needed per sub-buffer slot.
        self._staging_need: dict[int, int] = {}

        # Group member pieces by (leader, cycle, agg): piece arrays plus
        # their source rank and position in the source's pack stream.
        groups: dict[tuple[int, int, int], list[tuple]] = {}
        for (rank, cycle), assignments in self._member_send.items():
            leader = self.leader_of_rank[rank]
            pieces = sum(sa.npieces for sa in assignments)
            nbytes = sum(sa.nbytes for sa in assignments)
            self._gather_load[(rank, cycle)] = (nbytes, pieces)
            if leader not in self.staging_leaders:
                # Pass-through: the singleton leader keeps its base
                # assignments (local_offsets index its own user buffer).
                self._send[(rank, cycle)] = assignments
                for sa in assignments:
                    self._recv.setdefault((sa.agg_index, cycle), []).append(
                        RecvExpectation(rank, sa.nbytes, sa.npieces)
                    )
                continue
            stream_pos = 0
            for sa in assignments:
                idx = np.arange(stream_pos, stream_pos + sa.npieces, dtype=np.int64)
                groups.setdefault((leader, cycle, sa.agg_index), []).append(
                    (sa.offsets, sa.lengths, np.full(sa.npieces, rank, dtype=np.int64), idx)
                )
                stream_pos += sa.npieces

        # Lay out each staging leader's per-cycle buffer and derive the
        # coalesced forward schedule.
        cursors: dict[tuple[int, int], int] = {}
        for (leader, cycle, agg) in sorted(groups):
            parts = groups[(leader, cycle, agg)]
            offs = np.concatenate([p[0] for p in parts]).astype(np.int64, copy=False)
            lens = np.concatenate([p[1] for p in parts]).astype(np.int64, copy=False)
            srcs = np.concatenate([p[2] for p in parts])
            stream = np.concatenate([p[3] for p in parts])
            order = np.lexsort((srcs, offs))
            offs, lens, srcs, stream = offs[order], lens[order], srcs[order], stream[order]
            base = cursors.get((leader, cycle), 0)
            stag = base + np.concatenate(([0], np.cumsum(lens)[:-1]))
            cursors[(leader, cycle)] = base + int(lens.sum())
            # Tell each member where its stream pieces land in staging.
            for src in np.unique(srcs):
                mask = srcs == src
                key = (cycle, int(src))
                dest = self._gather_scatter.get(key)
                if dest is None:
                    dest = np.zeros(self._gather_load[(int(src), cycle)][1], dtype=np.int64)
                    self._gather_scatter[key] = dest
                dest[stream[mask]] = stag[mask]
            # Merge file-contiguous runs (staging is contiguous in the
            # same order by construction).
            starts = np.flatnonzero(
                np.concatenate(([True], offs[1:] != offs[:-1] + lens[:-1]))
            )
            run_lens = np.add.reduceat(lens, starts)
            sa = SendAssignment(agg, offs[starts], run_lens, stag[starts])
            self._send.setdefault((leader, cycle), []).append(sa)
            self._recv.setdefault((agg, cycle), []).append(
                RecvExpectation(leader, sa.nbytes, sa.npieces)
            )
        for (leader, _cycle), need in cursors.items():
            self._staging_need[leader] = max(self._staging_need.get(leader, 0), need)

    # ------------------------------------------------------------------
    # Layer-1 (gather) queries
    # ------------------------------------------------------------------
    def is_leader(self, rank: int) -> bool:
        return self.leader_of_rank.get(rank) == rank

    def uses_staging(self, rank: int) -> bool:
        """Whether this rank forwards out of a staging buffer."""
        return rank in self.staging_leaders

    def member_sends_for(self, rank: int, cycle: int) -> list[SendAssignment]:
        """The rank's own (pre-coalescing) contributions in ``cycle``."""
        return self._member_send.get((rank, cycle), [])

    def gather_load(self, rank: int, cycle: int) -> tuple[int, int]:
        """(bytes, pieces) the rank contributes to its leader in ``cycle``."""
        return self._gather_load.get((rank, cycle), (0, 0))

    def gather_scatter(self, cycle: int, src_rank: int) -> np.ndarray | None:
        """Staging offsets of ``src_rank``'s pack stream (leader side)."""
        return self._gather_scatter.get((cycle, src_rank))

    def staging_bytes(self, rank: int) -> int:
        """Staging bytes this rank needs per sub-buffer slot (0 if none)."""
        return self._staging_need.get(rank, 0)

    # ------------------------------------------------------------------
    def check_consistency(self, views: dict[int, FileView]) -> None:
        """Both layers must cover every view byte exactly once."""
        # Layer 1: the member schedule is the base schedule.
        member = TwoPhasePlan(
            self.aggregators, self.domains, self.cycle_bytes,
            self.file_start, self.file_end,
        )
        member._send = self._member_send
        member.check_consistency(views)
        # Layer 2: per (leader, cycle) the forwarded bytes equal the
        # node's contributed bytes, and stay inside domain/cycle bounds.
        contributed: dict[tuple[int, int], int] = {}
        for (rank, cycle), (nbytes, _pieces) in self._gather_load.items():
            key = (self.leader_of_rank[rank], cycle)
            contributed[key] = contributed.get(key, 0) + nbytes
        forwarded: dict[tuple[int, int], int] = {}
        for (sender, cycle), assignments in self._send.items():
            leader = self.leader_of_rank[sender]
            for sa in assignments:
                forwarded[(leader, cycle)] = (
                    forwarded.get((leader, cycle), 0) + sa.nbytes
                )
                rng = self.cycle_range(sa.agg_index, cycle)
                assert rng is not None
                assert (sa.offsets >= rng[0]).all()
                assert (sa.offsets + sa.lengths <= rng[1]).all()
        assert forwarded == contributed, (
            "leader forwards do not match node contributions"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TwoLayerPlan aggs={len(self.aggregators)} "
            f"leaders={len(self.leaders)} cycles={self.num_cycles} "
            f"cycle_bytes={self.cycle_bytes} total={self.total_bytes}>"
        )


# ---------------------------------------------------------------------------
# Cross-run plan cache
# ---------------------------------------------------------------------------
# Plans are pure functions of (views content, partitioning inputs): two
# calls with byte-identical ingredients produce byte-identical schedules.
# Repeated cycles of one benchmark case, tuning sweeps that revisit a
# candidate, and the self-benchmark's repetitions therefore share one
# plan instead of re-running the whole vectorized partitioning pass.
# Plans are treated as immutable after construction (the bench runner
# already shares them across algorithms and repetitions), so handing the
# same object to several runs is safe.  The cache is process-local and
# capped: oldest entries are evicted first (insertion order).

_PLAN_CACHE: dict[str, TwoPhasePlan] = {}
_PLAN_CACHE_STATS = {"hits": 0, "misses": 0}
_PLAN_CACHE_CAP = 64


def plan_content_key(views: dict[int, FileView], **ingredients) -> str:
    """SHA-256 over the views' extent arrays plus partitioning inputs.

    ``ingredients`` must be JSON-reprable scalars/tuples (cycle size,
    stripe size, config cache key, rank placement, ...); the views
    participate by content — offsets/lengths/local_offsets bytes per
    rank — so equal views hash equal regardless of object identity.
    """
    h = hashlib.sha256()
    h.update(repr(sorted(ingredients.items())).encode())
    for rank in sorted(views):
        view = views[rank]
        h.update(str(rank).encode())
        h.update(np.ascontiguousarray(view.offsets).tobytes())
        h.update(np.ascontiguousarray(view.lengths).tobytes())
        h.update(np.ascontiguousarray(view.local_offsets).tobytes())
    return h.hexdigest()


def cached_plan(key: str) -> TwoPhasePlan | None:
    """The cached plan for ``key``, bumping the hit/miss counters."""
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        _PLAN_CACHE_STATS["misses"] += 1
        return None
    _PLAN_CACHE_STATS["hits"] += 1
    return plan


def store_plan(key: str, plan: TwoPhasePlan) -> None:
    """Insert ``plan`` under ``key``, evicting oldest past the cap."""
    if key in _PLAN_CACHE:
        return
    while len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[key] = plan


def plan_cache_stats() -> dict:
    """Snapshot of the cache counters (plus current size)."""
    return {**_PLAN_CACHE_STATS, "size": len(_PLAN_CACHE)}


def reset_plan_cache() -> None:
    """Drop all cached plans and zero the counters."""
    _PLAN_CACHE.clear()
    _PLAN_CACHE_STATS["hits"] = 0
    _PLAN_CACHE_STATS["misses"] = 0
