"""Intra-node pre-aggregation: the gather stage of two-layer shuffles.

With a :class:`~repro.collio.plan.TwoLayerPlan`, every cycle runs two
hops instead of one:

1. *Gather* (this module): each rank packs its cycle contributions into
   one contiguous stream and sends it — a single intra-node message over
   the node's memory engine — to its elected leader, which scatters the
   streams into a staging buffer laid out per aggregator (file-sorted,
   contiguous runs merged).  Leaders of single-rank nodes skip this hop
   entirely (the plan marks them pass-through).
2. *Forward*: the wrapped shuffle primitive runs unchanged against the
   plan's leader-level schedule; leaders send the coalesced messages out
   of staging (``AlgoContext.send_source``), every other rank has
   nothing to send inter-node.

:class:`TwoLayerShuffle` wraps any of the three shuffle primitives and
presents the same ``setup`` / ``init`` / ``wait`` / ``blocking`` /
``finish`` interface, so all five overlap algorithms drive a two-layer
shuffle without modification.  The gather runs synchronously inside
``init`` — exactly where a member's cycle data must be complete anyway —
and reuses staging slot ``cycle % nsub`` only after the slot's previous
forward shuffle has been waited (the same discipline as the collective
sub-buffers, which every algorithm already guarantees).

The gather's messages use the ``"intranode"`` match context, keeping
them out of the inter-node shuffle's matching space, and are recorded
as ``"gather"`` spans in the ``"intranode"`` span category with
``intranode.*`` metrics derived from the per-rank counters.
"""

from __future__ import annotations

import numpy as np

from repro.collio.context import AlgoContext
from repro.collio.plan import TwoLayerPlan
from repro.integrity.checksum import crc32_concat, extent_checksum

__all__ = ["TwoLayerShuffle", "INTRANODE_CONTEXT"]

#: MPI match-context tag of gather messages (disjoint from "shuffle").
INTRANODE_CONTEXT = "intranode"


def _stream_pieces(plan: TwoLayerPlan, rank: int, cycle: int):
    """(local_offset, length) pairs of a member's pack stream, in order."""
    for sa in plan.member_sends_for(rank, cycle):
        for loc, ln in zip(sa.local_offsets, sa.lengths):
            yield int(loc), int(ln)


def _stream_checksums(ctx: AlgoContext, rank: int, cycle: int):
    """Per-piece ``(nbytes, crc)`` of a member's pack stream + whole CRC.

    This is where gather traffic's checksums are *born*: each stream
    piece is checksummed once from the member's user buffer; the whole-
    message CRC is combined from them (no second byte pass).  Returns
    ``(None, None)`` without an integrity layer or payload bytes.
    """
    integrity = ctx.integrity
    if integrity is None or not ctx.carries_data:
        return None, None
    pieces = []
    for loc, ln in _stream_pieces(ctx.plan, rank, cycle):
        pieces.append((ln, extent_checksum(ctx.data[loc : loc + ln])))
        integrity.checksum_computed += 1
    if not pieces:
        return None, None
    if len(pieces) == 1:
        whole = pieces[0][1]
    else:
        whole = crc32_concat(pieces)
        integrity.checksum_reused += 1
    return tuple(pieces), whole


class TwoLayerShuffle:
    """A shuffle primitive with a node-local gather stage in front."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = f"two_layer({inner.name})"

    # ------------------------------------------------------------------
    # Engine interface (delegating to the wrapped primitive)
    # ------------------------------------------------------------------
    def setup(self, ctx: AlgoContext):
        ctx.allocate_staging()
        yield from self.inner.setup(ctx)

    def init(self, ctx: AlgoContext, cycle: int):
        yield from self._gather(ctx, cycle)
        handle = yield from self.inner.init(ctx, cycle)
        return handle

    def wait(self, ctx: AlgoContext, handle):
        yield from self.inner.wait(ctx, handle)

    def finish(self, ctx: AlgoContext, handle):
        yield from self.inner.finish(ctx, handle)

    def blocking(self, ctx: AlgoContext, cycle: int):
        handle = yield from self.init(ctx, cycle)
        yield from self.wait(ctx, handle)

    @property
    def combinable(self) -> bool:
        return self.inner.combinable

    @property
    def context_tag(self) -> str:
        return getattr(self.inner, "context_tag", "shuffle")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TwoLayerShuffle inner={self.inner.name}>"

    # ------------------------------------------------------------------
    # The gather stage
    # ------------------------------------------------------------------
    def _gather(self, ctx: AlgoContext, cycle: int):
        """Collect this cycle's node-local data at the leader (SPMD)."""
        plan: TwoLayerPlan = ctx.plan
        rank = ctx.rank
        leader = plan.leader_of_rank[rank]
        if not plan.uses_staging(leader):
            return  # pass-through node: nothing to coalesce
        t0 = ctx.mpi.now
        span = None
        if ctx.recorder.active:
            span = ctx.recorder.begin(
                t0, "gather", "intranode", rank=rank, cycle=cycle, leader=leader
            )
        if rank == leader:
            yield from self._gather_leader(ctx, cycle)
        else:
            yield from self._gather_member(ctx, cycle, leader)
        ctx.recorder.end(span, ctx.mpi.now)
        ctx.stats.add_time("gather", ctx.mpi.now - t0)

    def _gather_member(self, ctx: AlgoContext, cycle: int, leader: int):
        """Pack this rank's stream and ship it to the leader (blocking).

        Blocking matters: the send's completion keeps the member inside
        an MPI progress window, so a rendezvous-sized stream can hand
        its CTS/data exchange even while the leader is still busy.
        """
        plan: TwoLayerPlan = ctx.plan
        nbytes, npieces = plan.gather_load(ctx.rank, cycle)
        if not nbytes:
            return
        payload = None
        if ctx.carries_data:
            parts = [
                ctx.data[loc : loc + ln] for loc, ln in _stream_pieces(plan, ctx.rank, cycle)
            ]
            payload = parts[0] if len(parts) == 1 else np.concatenate(parts)
        cost = ctx.pack_cost(nbytes, npieces)
        if cost:
            yield from ctx.mpi.compute(cost)
        pieces, whole = _stream_checksums(ctx, ctx.rank, cycle)
        yield from ctx.mpi.send(
            leader, tag=cycle, data=payload, size=nbytes,
            context=INTRANODE_CONTEXT, readonly=True,
            checksum=whole, piece_checksums=pieces,
        )
        ctx.note_message(leader, nbytes, stage="gather")

    def _gather_leader(self, ctx: AlgoContext, cycle: int):
        """Receive every member's stream and assemble the staging slot."""
        plan: TwoLayerPlan = ctx.plan
        rank = ctx.rank
        # The slot is being refilled: any leftover verified CRCs from the
        # cycle that previously used it are stale now.
        led = ctx.staging_ledger(cycle)
        if led is not None:
            led.clear()
        requests = []
        inbound: list[tuple[int, np.ndarray | None, object]] = []
        for member in plan.members_of_leader[rank]:
            if member == rank:
                continue
            nbytes, _pieces = plan.gather_load(member, cycle)
            if not nbytes:
                continue
            # Pooled receive buffer (returned once staged).
            buf = ctx.take_buffer(nbytes)
            req = yield from ctx.mpi.irecv(
                member, tag=cycle, buffer=buf, size=nbytes, context=INTRANODE_CONTEXT
            )
            requests.append(req)
            inbound.append((member, buf, req))
        own_bytes, own_pieces = plan.gather_load(rank, cycle)
        if own_bytes:
            self._stage_own(ctx, cycle)
            yield from ctx.mpi.compute(ctx.local_copy_cost(own_bytes, own_pieces))
            ctx.stats.bump("gather_local_copies")
        if requests:
            yield from ctx.mpi.waitall(requests)
        total_bytes = 0
        total_pieces = 0
        for member, buf, req in inbound:
            self._stage_member(ctx, cycle, member, buf, req)
            ctx.release_buffer(buf)
            nbytes, npieces = plan.gather_load(member, cycle)
            total_bytes += nbytes
            total_pieces += npieces
        cost = ctx.unpack_cost(total_bytes, total_pieces)
        if cost:
            yield from ctx.mpi.compute(cost)

    # ------------------------------------------------------------------
    # Staging-buffer byte movement (skipped in size-only mode)
    # ------------------------------------------------------------------
    def _stage_own(self, ctx: AlgoContext, cycle: int) -> None:
        """Copy the leader's own pieces straight into staging.

        The leader is the producer of its own stream, so its piece CRCs
        are computed here (once) and filed in the staging ledger under
        their staging offsets — the forward shuffle combines them.
        """
        if not ctx.carries_data:
            return
        plan: TwoLayerPlan = ctx.plan
        stag = ctx.staging(ctx.sub_of_cycle(cycle))
        dests = plan.gather_scatter(cycle, ctx.rank)
        led = ctx.staging_ledger(cycle)
        integrity = ctx.integrity
        for i, (loc, ln) in enumerate(_stream_pieces(plan, ctx.rank, cycle)):
            off = int(dests[i])
            piece = ctx.data[loc : loc + ln]
            stag[off : off + ln] = piece
            if led is not None:
                led.file(off, ln, extent_checksum(piece))
                integrity.checksum_computed += 1

    def _stage_member(
        self, ctx: AlgoContext, cycle: int, member: int,
        buf: np.ndarray | None, req=None,
    ) -> None:
        """Scatter a member's received stream into staging positions.

        The delivered message's carried piece CRCs (already verified as
        a whole at receive time) are filed in the staging ledger under
        their staging offsets — no byte is re-checksummed here.
        """
        if buf is None:
            return
        plan: TwoLayerPlan = ctx.plan
        stag = ctx.staging(ctx.sub_of_cycle(cycle))
        dests = plan.gather_scatter(cycle, member)
        led = ctx.staging_ledger(cycle)
        carried = getattr(req.detail, "piece_checksums", None) if req is not None else None
        pos = 0
        for i, (_loc, ln) in enumerate(_stream_pieces(plan, member, cycle)):
            off = int(dests[i])
            stag[off : off + ln] = buf[pos : pos + ln]
            if led is not None and carried is not None and i < len(carried):
                led.file(off, ln, carried[i][1])
                ctx.integrity.checksum_reused += 1
            pos += ln
