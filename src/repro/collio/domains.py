"""File-domain partitioning: one contiguous file range per aggregator.

The global byte range touched by the collective write is split into
contiguous, even domains, optionally aligned down to stripe boundaries
(so one aggregator's writes never share a stripe with another's — the
classic lock-contention avoidance ompio applies on striped file systems,
cf. Liao & Choudhary's partitioning study cited by the paper).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["partition_domains"]


def partition_domains(
    start: int,
    end: int,
    num_aggregators: int,
    stripe_size: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``[start, end)`` into ``num_aggregators`` contiguous domains.

    Domains are returned in file order, one per aggregator; with stripe
    alignment, interior boundaries move down to the nearest stripe
    boundary (domains can then differ in size; empty domains are allowed
    for degenerate inputs like more aggregators than stripes).
    """
    if end < start:
        raise ConfigurationError(f"invalid range [{start}, {end})")
    if num_aggregators < 1:
        raise ConfigurationError("need at least one aggregator")
    total = end - start
    base = total // num_aggregators
    remainder = total % num_aggregators
    bounds = [start]
    for i in range(num_aggregators):
        size = base + (1 if i < remainder else 0)
        bounds.append(bounds[-1] + size)
    if stripe_size is not None and stripe_size > 1:
        for i in range(1, num_aggregators):
            aligned = (bounds[i] // stripe_size) * stripe_size
            bounds[i] = max(bounds[i - 1], min(aligned, end)) if aligned >= start else bounds[i - 1]
        # Keep boundaries monotonic after alignment.
        for i in range(1, num_aggregators + 1):
            if bounds[i] < bounds[i - 1]:
                bounds[i] = bounds[i - 1]
        bounds[num_aggregators] = end
    return [(bounds[i], bounds[i + 1]) for i in range(num_aggregators)]
