"""File-domain partitioning: one contiguous file range per aggregator.

The global byte range touched by the collective write is split into
contiguous, even domains, optionally aligned down to stripe boundaries
(so one aggregator's writes never share a stripe with another's — the
classic lock-contention avoidance ompio applies on striped file systems,
cf. Liao & Choudhary's partitioning study cited by the paper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["partition_domains"]


def partition_domains(
    start: int,
    end: int,
    num_aggregators: int,
    stripe_size: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``[start, end)`` into ``num_aggregators`` contiguous domains.

    Domains are returned in file order, one per aggregator; with stripe
    alignment, interior boundaries move down to the nearest stripe
    boundary (domains can then differ in size; empty domains are allowed
    for degenerate inputs like more aggregators than stripes).
    """
    if end < start:
        raise ConfigurationError(f"invalid range [{start}, {end})")
    if num_aggregators < 1:
        raise ConfigurationError("need at least one aggregator")
    total = end - start
    base = total // num_aggregators
    remainder = total % num_aggregators
    sizes = np.full(num_aggregators, base, dtype=np.int64)
    sizes[:remainder] += 1
    bounds = np.empty(num_aggregators + 1, dtype=np.int64)
    bounds[0] = start
    np.cumsum(sizes, out=bounds[1:])
    bounds[1:] += start
    if stripe_size is not None and stripe_size > 1 and num_aggregators > 1:
        # Move interior boundaries down to stripe boundaries; a running
        # maximum keeps them monotonic (a boundary that would align below
        # ``start`` — or below its predecessor — collapses onto it,
        # yielding an empty domain, exactly like the scalar loop did).
        interior = bounds[1:num_aggregators]
        aligned = (interior // stripe_size) * stripe_size
        candidates = np.where(aligned >= start, np.minimum(aligned, end), start)
        np.maximum.accumulate(candidates, out=candidates)
        bounds[1:num_aggregators] = candidates
        bounds[num_aggregators] = end
    bl = bounds.tolist()
    return [(bl[i], bl[i + 1]) for i in range(num_aggregators)]
