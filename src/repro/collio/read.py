"""Two-phase collective **read** — the mirror of the paper's write path.

The paper's closing section lists collective reads as a natural
extension, and its related-work section credits View-based I/O [3] with
overlapping *read-ahead* against ongoing operations.  This module
implements the two-phase read with the same machinery as the write:

1. **file access phase** — each aggregator reads one cycle of its
   contiguous file domain into a collective (sub-)buffer;
2. **scatter phase** — the cycle's bytes are distributed to the ranks
   that own them under the file view.

The :class:`~repro.collio.plan.TwoPhasePlan` is reused unchanged: what a
rank *sends* to an aggregator during a write is exactly what it
*receives* from it during a read.

Algorithms (``READ_ALGORITHMS``):

``no_overlap``
    read cycle -> scatter cycle, strictly sequential (full-size buffer).
``read_ahead``
    asynchronous read of cycle *c+1* posted before the scatter of cycle
    *c* (double buffering) — the read-ahead idea of View-based I/O,
    driven by the OS's aio engine like the paper's Write-Overlap.
``scatter_overlap``
    non-blocking scatter of cycle *c* overlapped with the blocking read
    of cycle *c+1* — the Comm-Overlap mirror, subject to the same
    progress limitation.

Scatter primitives (``SCATTER_PRIMITIVES``):

``two_sided``
    Aggregators ``Isend`` per-destination bundles; contiguous
    (single-piece) bundles are received zero-copy into the destination's
    buffer, scattered bundles pay pack (aggregator) / unpack (receiver).
``one_sided_get``
    Destinations ``Get`` their pieces straight out of the aggregator's
    exposed sub-buffer window between two fences — no aggregator CPU,
    at the price of the fence synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collio.api import build_plan, default_data
from repro.collio.config import CollectiveConfig
from repro.collio.context import PhaseStats
from repro.collio.plan import SendAssignment, TwoPhasePlan
from repro.collio.view import FileView
from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.mpi.world import World

__all__ = [
    "READ_ALGORITHMS",
    "SCATTER_PRIMITIVES",
    "CollectiveReadResult",
    "collective_read",
    "run_collective_read",
]


class ReadContext:
    """Per-rank working state of a collective read."""

    def __init__(self, mpi, fh, plan: TwoPhasePlan, view: FileView,
                 out: np.ndarray | None, config: CollectiveConfig, nsub: int) -> None:
        self.mpi = mpi
        self.fh = fh
        self.plan = plan
        self.view = view
        self.out = out
        self.config = config
        self.nsub = nsub
        self.rank = mpi.rank
        self.agg_index = plan.agg_index_of_rank.get(mpi.rank)
        self.stats = PhaseStats()
        self._buffers: list[np.ndarray] | None = None
        self._windows = None

    @property
    def is_aggregator(self) -> bool:
        return self.agg_index is not None

    @property
    def carries_data(self) -> bool:
        return self.out is not None

    def sub_of_cycle(self, cycle: int) -> int:
        return cycle % self.nsub

    def allocate_buffers(self) -> None:
        size = self.plan.cycle_bytes
        self._buffers = (
            [np.zeros(size, dtype=np.uint8) for _ in range(self.nsub)]
            if self.is_aggregator
            else []
        )

    def allocate_windows(self):
        size = self.plan.cycle_bytes if self.is_aggregator else 0
        windows = []
        for _ in range(self.nsub):
            win = yield from self.mpi.win_allocate(size)
            windows.append(win)
        self._windows = windows

    def buffer(self, sub: int) -> np.ndarray:
        if self._windows is not None:
            return self._windows[sub].local_buffer
        assert self._buffers is not None and self.is_aggregator
        return self._buffers[sub]

    def window(self, sub: int):
        assert self._windows is not None
        return self._windows[sub]

    # -- file access ---------------------------------------------------
    def _read_range(self, cycle: int):
        if not self.is_aggregator:
            return None
        return self.plan.write_range(self.agg_index, cycle)

    def read_blocking(self, cycle: int):
        rng = self._read_range(cycle)
        if rng is None:
            return
        t0 = self.mpi.now
        lo, hi = rng
        data = yield from self.fh.read_at(lo, hi - lo)
        if self.carries_data:
            crange = self.plan.cycle_range(self.agg_index, cycle)
            base = crange[0]
            self.buffer(self.sub_of_cycle(cycle))[lo - base : hi - base] = data
        self.stats.add_time("read", self.mpi.now - t0)
        self.stats.bump("reads")

    def read_init(self, cycle: int):
        rng = self._read_range(cycle)
        if rng is None:
            return None
        t0 = self.mpi.now
        lo, hi = rng
        req, data = yield from self.fh.iread_at(lo, hi - lo)
        self.stats.add_time("read_post", self.mpi.now - t0)
        self.stats.bump("reads")
        return (cycle, lo, hi, req, data)

    def read_wait(self, handle):
        if handle is None:
            return
        cycle, lo, hi, req, data = handle
        t0 = self.mpi.now
        yield from self.mpi.wait(req)
        if self.carries_data:
            crange = self.plan.cycle_range(self.agg_index, cycle)
            base = crange[0]
            self.buffer(self.sub_of_cycle(cycle))[lo - base : hi - base] = data
        self.stats.add_time("read", self.mpi.now - t0)

    # -- CPU cost model (mirrors AlgoContext) ---------------------------
    @property
    def memory_bandwidth(self) -> float:
        return self.mpi.world.cluster.spec.memory_bandwidth

    def copy_cost(self, nbytes: int, npieces: int) -> float:
        if npieces <= 1:
            return 0.0
        per_piece = self.config.pack_overhead_per_extent * self.config.extent_cost_factor
        return npieces * per_piece + nbytes / self.memory_bandwidth

    def local_copy_cost(self, nbytes: int, npieces: int) -> float:
        per_piece = self.config.unpack_overhead_per_extent * self.config.extent_cost_factor
        return npieces * per_piece + nbytes / self.memory_bandwidth


def _deliver(ctx: ReadContext, cycle: int, sa: SendAssignment, payload: np.ndarray | None) -> None:
    """Copy a received bundle's pieces into the rank's output buffer."""
    if payload is None or ctx.out is None:
        return
    pos = 0
    for ln, loc in zip(sa.lengths, sa.local_offsets):
        ctx.out[int(loc) : int(loc) + int(ln)] = payload[pos : pos + int(ln)]
        pos += int(ln)


def _bundle_from_buffer(ctx: ReadContext, cycle: int, sa: SendAssignment) -> np.ndarray | None:
    """Gather a destination's pieces out of the aggregator's sub-buffer."""
    if not ctx.carries_data:
        return None
    crange = ctx.plan.cycle_range(sa.agg_index, cycle)
    base = crange[0]
    buf = ctx.buffer(ctx.sub_of_cycle(cycle))
    parts = [
        buf[int(off) - base : int(off) - base + int(ln)]
        for off, ln in zip(sa.offsets, sa.lengths)
    ]
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class TwoSidedScatter:
    """Isend/Irecv scatter with the zero-copy contiguous fast path."""

    name = "two_sided"

    def setup(self, ctx: ReadContext):
        ctx.allocate_buffers()
        return
        yield  # pragma: no cover

    def init(self, ctx: ReadContext, cycle: int):
        """Aggregators post sends, destinations post receives."""
        t0 = ctx.mpi.now
        sends, recvs, unpacks = [], [], []
        plan = ctx.plan
        # Destinations post receives first.
        for sa in plan.sends_for(ctx.rank, cycle):
            if plan.aggregators[sa.agg_index] == ctx.rank:
                continue  # self-delivery handled at wait
            if ctx.carries_data and sa.npieces == 1:
                loc, ln = int(sa.local_offsets[0]), int(sa.lengths[0])
                buf = ctx.out[loc : loc + ln]
            elif ctx.carries_data:
                buf = np.empty(sa.nbytes, dtype=np.uint8)
            else:
                buf = None
            req = yield from ctx.mpi.irecv(
                plan.aggregators[sa.agg_index], tag=cycle, buffer=buf,
                size=sa.nbytes, context="scatter",
            )
            recvs.append(req)
            if sa.npieces > 1:
                unpacks.append((sa, buf))
        # Aggregators send each destination's bundle.
        if ctx.is_aggregator:
            for exp in plan.recvs_for(ctx.agg_index, cycle):
                if exp.src_rank == ctx.rank:
                    continue
                sa = next(
                    s for s in plan.sends_for(exp.src_rank, cycle)
                    if s.agg_index == ctx.agg_index
                )
                cost = ctx.copy_cost(sa.nbytes, sa.npieces)
                if cost:
                    yield from ctx.mpi.compute(cost)
                payload = _bundle_from_buffer(ctx, cycle, sa)
                req = yield from ctx.mpi.isend(
                    exp.src_rank, tag=cycle, data=payload, size=sa.nbytes,
                    context="scatter",
                )
                sends.append(req)
        ctx.stats.add_time("scatter_init", ctx.mpi.now - t0)
        return (cycle, sends, recvs, unpacks)

    def wait(self, ctx: ReadContext, handle):
        cycle, sends, recvs, unpacks = handle
        t0 = ctx.mpi.now
        if sends or recvs:
            yield from ctx.mpi.waitall(sends + recvs)
        # Scattered bundles: unpack into the output buffer.
        total_bytes = total_pieces = 0
        for sa, buf in unpacks:
            _deliver(ctx, cycle, sa, buf)
            total_bytes += sa.nbytes
            total_pieces += sa.npieces
        if total_pieces:
            yield from ctx.mpi.compute(ctx.copy_cost(total_bytes, total_pieces))
        # Self-delivery on aggregators: a local memcpy.
        for sa in ctx.plan.sends_for(ctx.rank, cycle):
            if ctx.plan.aggregators[sa.agg_index] == ctx.rank:
                _deliver(ctx, cycle, sa, _bundle_from_buffer(ctx, cycle, sa))
                yield from ctx.mpi.compute(ctx.local_copy_cost(sa.nbytes, sa.npieces))
        ctx.stats.add_time("scatter", ctx.mpi.now - t0)

    def blocking(self, ctx: ReadContext, cycle: int):
        handle = yield from self.init(ctx, cycle)
        yield from self.wait(ctx, handle)


class OneSidedGetScatter:
    """Destinations Get their pieces from the aggregator's window."""

    name = "one_sided_get"

    def setup(self, ctx: ReadContext):
        yield from ctx.allocate_windows()

    def init(self, ctx: ReadContext, cycle: int):
        t0 = ctx.mpi.now
        win = ctx.window(ctx.sub_of_cycle(cycle))
        # Opening fence: the aggregator has filled the sub-buffer (its
        # read completed before it enters), so gets may start after it.
        yield from win.fence()
        gets = []
        plan = ctx.plan
        for sa in plan.sends_for(ctx.rank, cycle):
            agg_rank = plan.aggregators[sa.agg_index]
            crange = plan.cycle_range(sa.agg_index, cycle)
            base = crange[0]
            for off, ln, loc in zip(sa.offsets, sa.lengths, sa.local_offsets):
                local = (
                    ctx.out[int(loc) : int(loc) + int(ln)] if ctx.carries_data else None
                )
                evt = yield from win.get(agg_rank, local, int(off) - base, size=int(ln))
                gets.append(evt)
        ctx.stats.bump("gets_issued", len(gets))
        ctx.stats.add_time("scatter_init", ctx.mpi.now - t0)
        return (cycle, gets)

    def wait(self, ctx: ReadContext, handle):
        cycle, _gets = handle
        t0 = ctx.mpi.now
        win = ctx.window(ctx.sub_of_cycle(cycle))
        yield from win.fence()
        ctx.stats.add_time("scatter", ctx.mpi.now - t0)
        ctx.stats.bump("fences", 2)

    def blocking(self, ctx: ReadContext, cycle: int):
        handle = yield from self.init(ctx, cycle)
        yield from self.wait(ctx, handle)


SCATTER_PRIMITIVES = {
    "two_sided": TwoSidedScatter,
    "one_sided_get": OneSidedGetScatter,
}


# --------------------------------------------------------------------------
# Read algorithms
# --------------------------------------------------------------------------

class NoOverlapRead:
    name = "no_overlap"
    nsub = 1

    def run(self, ctx: ReadContext, scatter):
        for cycle in range(ctx.plan.num_cycles):
            yield from ctx.read_blocking(cycle)
            yield from scatter.blocking(ctx, cycle)


class ReadAheadOverlap:
    """Asynchronous read of the next cycle behind the current scatter."""

    name = "read_ahead"
    nsub = 2

    def run(self, ctx: ReadContext, scatter):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        pending = yield from ctx.read_init(0)
        yield from ctx.read_wait(pending)
        for cycle in range(ncycles):
            ahead = None
            if cycle + 1 < ncycles:
                ahead = yield from ctx.read_init(cycle + 1)
            yield from scatter.blocking(ctx, cycle)
            yield from ctx.read_wait(ahead)


class ScatterOverlap:
    """Non-blocking scatter overlapped with the next blocking read."""

    name = "scatter_overlap"
    nsub = 2

    def run(self, ctx: ReadContext, scatter):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        yield from ctx.read_blocking(0)
        pending = yield from scatter.init(ctx, 0)
        for cycle in range(1, ncycles):
            yield from ctx.read_blocking(cycle)
            nxt = yield from scatter.init(ctx, cycle)
            yield from scatter.wait(ctx, pending)
            pending = nxt
        yield from scatter.wait(ctx, pending)


READ_ALGORITHMS = {
    cls.name: cls for cls in (NoOverlapRead, ReadAheadOverlap, ScatterOverlap)
}


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------

def collective_read(
    mpi,
    fh,
    view: FileView,
    out: np.ndarray | None,
    plan: TwoPhasePlan,
    algorithm: str = "read_ahead",
    scatter: str = "two_sided",
    config: CollectiveConfig | None = None,
    exchange_metadata: bool = True,
):
    """Per-rank collective read (generator; run on **every** rank).

    Fills ``out`` (a uint8 buffer of ``view.total_bytes``; None for
    size-only timing runs) and returns the rank's PhaseStats.
    """
    config = config or CollectiveConfig()
    try:
        algo = READ_ALGORITHMS[algorithm]()
    except KeyError:
        raise KeyError(
            f"unknown read algorithm {algorithm!r}; known: {sorted(READ_ALGORITHMS)}"
        ) from None
    try:
        engine = SCATTER_PRIMITIVES[scatter]()
    except KeyError:
        raise KeyError(
            f"unknown scatter primitive {scatter!r}; known: {sorted(SCATTER_PRIMITIVES)}"
        ) from None
    if out is not None and out.size != view.total_bytes:
        raise ConfigurationError(
            f"output buffer has {out.size} bytes but the view covers {view.total_bytes}"
        )
    ctx = ReadContext(mpi, fh, plan, view, out, config, nsub=algo.nsub)
    if exchange_metadata:
        yield from mpi.allgather(None, nbytes=view.num_extents * config.meta_bytes_per_extent)
    yield from engine.setup(ctx)
    t0 = mpi.now
    yield from algo.run(ctx, engine)
    ctx.stats.add_time("total", mpi.now - t0)
    yield from mpi.barrier()
    return ctx.stats


@dataclass
class CollectiveReadResult:
    """Outcome of one simulated collective read."""

    algorithm: str
    scatter: str
    nprocs: int
    num_aggregators: int
    num_cycles: int
    total_bytes: int
    elapsed: float
    read_bandwidth: float
    per_rank_stats: list = field(default_factory=list)
    verified: bool | None = None


def run_collective_read(
    cluster_spec: ClusterSpec,
    fs_spec: FsSpec,
    nprocs: int,
    views: dict[int, FileView],
    data_factory: Callable[[int, int], np.ndarray] = default_data,
    algorithm: str = "read_ahead",
    scatter: str = "two_sided",
    config: CollectiveConfig | None = None,
    seed: int = DEFAULT_SEED,
    verify: bool = False,
    carry_data: bool = True,
    path: str = "/collective.in",
) -> CollectiveReadResult:
    """Pre-populate a file from the views, then collectively read it back.

    With ``verify=True`` every rank's buffer is checked byte-exactly
    against the pattern it should have read.
    """
    if set(views) != set(range(nprocs)):
        raise ConfigurationError("views must cover exactly ranks 0..nprocs-1")
    config = config or CollectiveConfig()
    if (verify or config.verify) and not carry_data:
        raise ConfigurationError("verify=True requires carry_data=True")
    world = World(cluster_spec, nprocs, fs_spec=fs_spec, seed=seed)
    algo = READ_ALGORITHMS[algorithm]()
    cycle_bytes = max(1, config.cb_buffer_size // algo.nsub)
    # Reads have no gather stage: always a single-layer plan.
    plan = build_plan(
        world.cluster, nprocs, views, config, cycle_bytes,
        stripe_size=fs_spec.stripe_size, two_layer=False,
    )
    # Pre-populate the file contents (out-of-band; the read is what's timed).
    payloads = {r: data_factory(r, views[r].total_bytes) for r in range(nprocs)}
    if carry_data:
        simfile = world.pfs.open(path)
        for rank, view in views.items():
            data = payloads[rank]
            for off, ln, loc in zip(view.offsets, view.lengths, view.local_offsets):
                simfile.write(int(off), data[int(loc) : int(loc) + int(ln)])
    outs = {
        r: (np.zeros(views[r].total_bytes, dtype=np.uint8) if carry_data else None)
        for r in range(nprocs)
    }

    def program(mpi):
        fh = yield from mpi.file_open(path)
        stats = yield from collective_read(
            mpi, fh, views[mpi.rank], outs[mpi.rank], plan,
            algorithm=algorithm, scatter=scatter, config=config,
        )
        return stats

    t_start = world.now
    stats = world.run(program)
    elapsed = world.now - t_start
    result = CollectiveReadResult(
        algorithm=algorithm,
        scatter=scatter,
        nprocs=nprocs,
        num_aggregators=len(plan.aggregators),
        num_cycles=plan.num_cycles,
        total_bytes=plan.total_bytes,
        elapsed=elapsed,
        read_bandwidth=plan.total_bytes / elapsed if elapsed > 0 else 0.0,
        per_rank_stats=stats,
    )
    if verify or config.verify:
        for rank in range(nprocs):
            expected = payloads[rank]
            if not np.array_equal(outs[rank], expected):
                bad = np.flatnonzero(outs[rank] != expected)
                raise AssertionError(
                    f"collective read corrupted rank {rank}'s data: "
                    f"{bad.size} wrong bytes, first at local offset {bad[0]}"
                )
        result.verified = True
    return result
