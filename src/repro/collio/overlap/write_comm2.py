"""Algorithm 4 — Write-Communication-2 Overlap (data-flow ordering).

A revision of Algorithm 3 that avoids letting the non-blocking shuffle
and non-blocking write complete "approximately at the same time": instead
of one joint ``wait_all``, each non-blocking completion is immediately
followed by posting its successor — completion of a sub-buffer's shuffle
posts that sub-buffer's write; completion of a sub-buffer's write posts
its next shuffle.  (The paper's Listing 4 contains an evident typo —
``write_init(p1)`` appears on two consecutive lines — so this
implementation follows the prose description of the data-flow model;
unrolled by two cycles it matches the listing's two-shuffles/two-writes
per iteration shape.)

::

    shuffle(p1)                 # cycle 0
    write_init(p1)              # -> w_prev
    shuffle_init(p2)            # cycle 1 -> h
    for k = 1 .. NumberOfCycles-1:
        shuffle_wait(h)         # cycle k data ready
        write_init(p[k])        # post its write immediately
        write_wait(w_prev)      # cycle k-1 write done
        shuffle_init(p[k+1])    # post next shuffle immediately
        w_prev = ...
    shuffle/write drain
"""

from __future__ import annotations

from repro.collio.context import AlgoContext
from repro.collio.overlap.base import OverlapAlgorithm

__all__ = ["WriteComm2Overlap"]


class WriteComm2Overlap(OverlapAlgorithm):
    name = "write_comm2"
    nsub = 2
    uses_async_write = True

    def run(self, ctx: AlgoContext, shuffle):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        yield from ctx.planning_tick()
        yield from shuffle.blocking(ctx, 0)
        pending_write = yield from ctx.write_init(0)
        if ncycles == 1:
            yield from ctx.write_wait(pending_write)
            return
        handle = yield from shuffle.init(ctx, 1)
        for cycle in range(1, ncycles):
            with ctx.iteration(cycle):
                yield from ctx.planning_tick()
                # Data for `cycle` is ready -> immediately post its write.
                yield from shuffle.wait(ctx, handle)
                next_write = yield from ctx.write_init(cycle)
                # Previous cycle's write is done -> its sub-buffer is free ->
                # immediately post the next shuffle into it.
                yield from ctx.write_wait(pending_write)
                pending_write = next_write
                if cycle + 1 < ncycles:
                    handle = yield from shuffle.init(ctx, cycle + 1)
        yield from ctx.write_wait(pending_write)
