"""Algorithm 3 — Write-Communication Overlap.

Both phases non-blocking: every iteration posts the previous cycle's
asynchronous write and the next cycle's shuffle, then waits for **both**
together (``wait_all(p1, p2)``).

For the two-sided shuffle the joint wait is a genuine ``MPI_Waitall``
over the write request and the shuffle requests (followed by the
aggregator's unpack).  For the RMA shuffles — whose completion is a
collective synchronization, not a request — the write wait precedes the
shuffle synchronization, preserving the algorithm's "everything posted
before anything waited" structure.

::

    shuffle(p1)
    for i = 1 .. NumberOfCycles:
        write_init(p1)
        shuffle_init(p2)      # empty once past the last cycle
        wait_all(p1, p2)
        swap(p1, p2)
"""

from __future__ import annotations

from repro.collio.context import AlgoContext
from repro.collio.overlap.base import OverlapAlgorithm

__all__ = ["WriteCommOverlap"]


class WriteCommOverlap(OverlapAlgorithm):
    name = "write_comm"
    nsub = 2
    uses_async_write = True

    def run(self, ctx: AlgoContext, shuffle):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        yield from ctx.planning_tick()
        yield from shuffle.blocking(ctx, 0)
        for cycle in range(1, ncycles + 1):
            with ctx.iteration(cycle - 1):
                yield from ctx.planning_tick()
                write_req = yield from ctx.write_init(cycle - 1)
                handle = None
                if cycle < ncycles:
                    handle = yield from shuffle.init(ctx, cycle)
                # wait_all(p1, p2)
                if handle is not None and shuffle.combinable:
                    requests = list(handle.requests)
                    if write_req is not None:
                        requests.append(write_req)
                    wait_span = None
                    if ctx.recorder.active:
                        wait_span = ctx.recorder.begin(
                            ctx.mpi.now, "wait_all", "comm.call",
                            rank=ctx.rank, cycle=cycle,
                        )
                    if requests:
                        yield from ctx.mpi.waitall(requests)
                    yield from shuffle.finish(ctx, handle)
                    ctx.recorder.end(wait_span, ctx.mpi.now)
                    ctx.note_write_done(write_req)
                else:
                    yield from ctx.write_wait(write_req)
                    if handle is not None:
                        yield from shuffle.wait(ctx, handle)
