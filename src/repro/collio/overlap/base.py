"""Common interface of the overlap algorithms."""

from __future__ import annotations

from repro.collio.context import AlgoContext

__all__ = ["OverlapAlgorithm"]


class OverlapAlgorithm:
    """One strategy for scheduling the shuffle and file-access phases.

    Subclasses implement :meth:`run` as a generator executed by every
    rank (SPMD): aggregator-only steps are internally empty on other
    ranks, but collective synchronization (barriers/fences inside RMA
    shuffles) stays aligned because all ranks walk the same call
    sequence.
    """

    #: Registry name (also used on the command line and in benchmarks).
    name: str = ""
    #: Number of collective sub-buffers (1 = full buffer, 2 = double buffering).
    nsub: int = 2
    #: Whether the file-access phase uses asynchronous (aio) writes.
    uses_async_write: bool = False

    def cycle_bytes(self, cb_buffer_size: int) -> int:
        """Bytes one internal cycle covers, given the collective buffer size."""
        return max(1, cb_buffer_size // self.nsub)

    def run(self, ctx: AlgoContext, shuffle):
        """Execute the collective write on this rank.  Generator."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
