"""Algorithm 2 — Write Overlap.

Blocking shuffle, asynchronous write: the aggregator posts each cycle's
write with ``iwrite`` (aio) and immediately shuffles the next cycle into
the other sub-buffer; the OS progresses the write in the background.
This is the counterpart of Communication Overlap and — per the paper's
results — usually the better bet, because ``aio_write`` progresses
without the process's help while background *communication* needs the
MPI library to be driven.

::

    shuffle(p1)
    write_init(p1)
    for i = 1 .. NumberOfCycles-1:
        shuffle(p2)
        write_init(p2)
        write_wait(p1)
        swap(p1, p2)
    write_wait(last posted)
"""

from __future__ import annotations

from repro.collio.context import AlgoContext
from repro.collio.overlap.base import OverlapAlgorithm

__all__ = ["WriteOverlap"]


class WriteOverlap(OverlapAlgorithm):
    name = "write_overlap"
    nsub = 2
    uses_async_write = True

    def run(self, ctx: AlgoContext, shuffle):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        yield from ctx.planning_tick()
        yield from shuffle.blocking(ctx, 0)
        pending_write = yield from ctx.write_init(0)
        for cycle in range(1, ncycles):
            with ctx.iteration(cycle):
                yield from ctx.planning_tick()
                yield from shuffle.blocking(ctx, cycle)
                next_write = yield from ctx.write_init(cycle)
                yield from ctx.write_wait(pending_write)
                pending_write = next_write
        yield from ctx.write_wait(pending_write)
