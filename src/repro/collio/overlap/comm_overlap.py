"""Algorithm 1 — Communication Overlap.

Non-blocking shuffle, blocking write: while the aggregator writes
sub-buffer ``p1``, the next cycle's shuffle proceeds "in the background"
into ``p2``.  The catch the paper evaluates: without a progress thread,
rendezvous traffic addressed to an aggregator makes **no** progress while
that aggregator sits in a blocking ``write()`` — so the overlap this
algorithm promises largely fails to materialize for large messages.

::

    shuffle_init(p1)
    for i = 1 .. NumberOfCycles-1:
        shuffle_init(p2)
        shuffle_wait(p1)
        write(p1)              # blocking
        swap(p1, p2)
    shuffle_wait(p1)
    write(p1)
"""

from __future__ import annotations

from repro.collio.context import AlgoContext
from repro.collio.overlap.base import OverlapAlgorithm

__all__ = ["CommOverlap"]


class CommOverlap(OverlapAlgorithm):
    name = "comm_overlap"
    nsub = 2
    uses_async_write = False

    def run(self, ctx: AlgoContext, shuffle):
        ncycles = ctx.plan.num_cycles
        if ncycles == 0:
            return
        yield from ctx.planning_tick()
        pending = yield from shuffle.init(ctx, 0)
        for cycle in range(1, ncycles):
            with ctx.iteration(cycle):
                yield from ctx.planning_tick()
                nxt = yield from shuffle.init(ctx, cycle)
                yield from shuffle.wait(ctx, pending)
                yield from ctx.write_blocking(cycle - 1)
                pending = nxt
        yield from shuffle.wait(ctx, pending)
        yield from ctx.write_blocking(ncycles - 1)
