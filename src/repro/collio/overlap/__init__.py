"""The five collective-write algorithms evaluated by the paper.

===================  ====  =========================================
name                 Alg.  overlap structure
===================  ====  =========================================
``no_overlap``       —     classic two-phase baseline (full buffer)
``comm_overlap``     1     non-blocking shuffle + blocking write
``write_overlap``    2     blocking shuffle + asynchronous write
``write_comm``       3     both non-blocking, joint ``wait_all``
``write_comm2``      4     both non-blocking, data-flow ordering
===================  ====  =========================================

All overlap algorithms split the collective buffer into two half-size
sub-buffers (so their internal cycles are half as large and twice as
many as the baseline's), exactly as Sec. III-A describes.
"""

from repro.collio.overlap.base import OverlapAlgorithm
from repro.collio.overlap.no_overlap import NoOverlap
from repro.collio.overlap.comm_overlap import CommOverlap
from repro.collio.overlap.write_overlap import WriteOverlap
from repro.collio.overlap.write_comm import WriteCommOverlap
from repro.collio.overlap.write_comm2 import WriteComm2Overlap

ALGORITHMS = {
    cls.name: cls
    for cls in (NoOverlap, CommOverlap, WriteOverlap, WriteCommOverlap, WriteComm2Overlap)
}

#: Algorithms whose file-access phase is asynchronous (aio-based).
ASYNC_WRITE_ALGORITHMS = frozenset(
    cls.name for cls in (WriteOverlap, WriteCommOverlap, WriteComm2Overlap)
)


def make_algorithm(name: str) -> OverlapAlgorithm:
    """Instantiate an overlap algorithm by name."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}") from None


__all__ = [
    "OverlapAlgorithm",
    "NoOverlap",
    "CommOverlap",
    "WriteOverlap",
    "WriteCommOverlap",
    "WriteComm2Overlap",
    "ALGORITHMS",
    "ASYNC_WRITE_ALGORITHMS",
    "make_algorithm",
]
