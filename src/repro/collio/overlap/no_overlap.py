"""The baseline: classic two-phase I/O, no overlap (paper's reference).

Each internal cycle is strictly sequential: shuffle the cycle's data to
the aggregators, then write it.  The full collective buffer backs a
single cycle (no sub-buffer split), so this baseline runs *half as many,
twice as large* cycles as the overlap algorithms — exactly the trade the
paper's Sec. III-A sets up.
"""

from __future__ import annotations

from repro.collio.context import AlgoContext
from repro.collio.overlap.base import OverlapAlgorithm

__all__ = ["NoOverlap"]


class NoOverlap(OverlapAlgorithm):
    name = "no_overlap"
    nsub = 1
    uses_async_write = False

    def run(self, ctx: AlgoContext, shuffle):
        for cycle in range(ctx.plan.num_cycles):
            with ctx.iteration(cycle):
                yield from ctx.planning_tick()
                yield from shuffle.blocking(ctx, cycle)
                yield from ctx.write_blocking(cycle)
