"""Two-phase collective write — the paper's contribution.

This package reimplements Open MPI ``ompio``'s ``vulcan`` collective-write
component on the simulated substrate, with the paper's additions:

* :mod:`repro.collio.view` — per-rank file views (flat extent lists);
* :mod:`repro.collio.aggregation` — automatic aggregator selection;
* :mod:`repro.collio.domains` — contiguous file-domain partitioning;
* :mod:`repro.collio.plan` — cycle planning (who sends what to which
  aggregator in which internal cycle);
* :mod:`repro.collio.shuffle` — the three data-transfer primitives for the
  shuffle phase: two-sided non-blocking, one-sided with
  ``MPI_Win_fence`` (active target), one-sided with
  ``MPI_Win_lock``/``unlock`` + barrier (passive target);
* :mod:`repro.collio.writeio` — blocking and asynchronous file-access
  engines;
* :mod:`repro.collio.overlap` — the five algorithms: ``no_overlap``
  (baseline two-phase), ``comm_overlap`` (Alg. 1), ``write_overlap``
  (Alg. 2), ``write_comm`` (Alg. 3), ``write_comm2`` (Alg. 4);
* :mod:`repro.collio.api` — the public entry points
  :func:`~repro.collio.api.collective_write` (per-rank, MPI-style) and
  :func:`~repro.collio.api.run_collective_write` (one-call experiment).
"""

from repro.collio.config import CollectiveConfig
from repro.collio.view import FileView
from repro.collio.plan import TwoLayerPlan, TwoPhasePlan
from repro.collio.api import (
    CollectiveWriteResult,
    RunSpec,
    collective_write,
    run_collective_write,
)
from repro.collio.overlap import ALGORITHMS
from repro.collio.shuffle import SHUFFLE_PRIMITIVES
from repro.collio.read import (
    READ_ALGORITHMS,
    SCATTER_PRIMITIVES,
    CollectiveReadResult,
    collective_read,
    run_collective_read,
)

__all__ = [
    "CollectiveConfig",
    "FileView",
    "TwoLayerPlan",
    "TwoPhasePlan",
    "CollectiveWriteResult",
    "RunSpec",
    "collective_write",
    "run_collective_write",
    "ALGORITHMS",
    "SHUFFLE_PRIMITIVES",
    "READ_ALGORITHMS",
    "SCATTER_PRIMITIVES",
    "CollectiveReadResult",
    "collective_read",
    "run_collective_read",
]
