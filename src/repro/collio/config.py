"""Tunables of the collective-write implementation (``ompio`` parameters)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING

from repro.config import DEFAULT_SCALE, scaled
from repro.errors import ConfigurationError
from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.retry import RetryPolicy
    from repro.integrity.spec import IntegritySpec
    from repro.staging.spec import StagingSpec

__all__ = ["CollectiveConfig"]

#: ompio's default collective buffer size (paper, Sec. IV): 32 MB.
CB_BUFFER_SIZE_UNSCALED: int = 32 * MiB


@dataclass(frozen=True)
class CollectiveConfig:
    """Parameters of the two-phase implementation.

    Defaults follow the paper's setup: 32 MB collective buffer (scaled),
    automatic aggregator selection, stripe-aligned file domains.
    """

    #: Collective buffer size per aggregator, bytes (already scaled).
    #: Overlap algorithms split this into two half-size sub-buffers.
    cb_buffer_size: int = CB_BUFFER_SIZE_UNSCALED // DEFAULT_SCALE
    #: Fixed aggregator count; None = automatic selection (paper ref [5]).
    num_aggregators: int | None = None
    #: Two-layer aggregation: coalesce each node's cycle data at an
    #: elected node-local leader before the inter-node shuffle (Kang et
    #: al., intra-node request aggregation).  ``True``/``False`` force
    #: it; ``"auto"`` enables it when the run places at least two ranks
    #: per used node (where the inter-node message-count win exists).
    two_layer: bool | str = False
    #: Align file-domain boundaries down to stripe boundaries.
    stripe_align_domains: bool = True
    #: CPU cost of handling one extent while packing at a sender, seconds.
    pack_overhead_per_extent: float = 8e-8
    #: CPU cost of scattering one received extent into the collective
    #: buffer at an aggregator, seconds.
    unpack_overhead_per_extent: float = 8e-8
    #: Per-cycle bookkeeping cost (offset computation etc.), seconds.
    cycle_planning_overhead: float = 1.5e-6
    #: Bytes of view metadata exchanged per extent during planning.
    meta_bytes_per_extent: int = 16
    #: How many full-size extents one modeled extent stands for (see
    #: Workload.extent_cost_factor).  Multiplies per-piece CPU costs
    #: (pack/unpack) and the per-put posting cost of one-sided shuffles.
    extent_cost_factor: float = 1.0
    #: Verify written bytes against expectations after the run (tests).
    verify: bool = False
    #: Retry policy applied to the file-access phase (None = no retries;
    #: write failures propagate immediately, as before the fault
    #: subsystem existed).  See :class:`repro.faults.retry.RetryPolicy`.
    retry: "RetryPolicy | None" = None
    #: Node-local burst-buffer tier (None or a disabled spec = write
    #: straight to the PFS).  See :class:`repro.staging.spec.StagingSpec`:
    #: aggregators absorb into the per-node buffer and a background
    #: scheduler drains it to the file system.
    staging: "StagingSpec | None" = None
    #: End-to-end data-integrity spec (None or mode="off" = today's
    #: unchecked datapath, byte-identical).  See
    #: :class:`repro.integrity.spec.IntegritySpec`: per-extent CRC-32
    #: carried shuffle → staging → storage with verify-on-receive,
    #: verify-on-drain, read-back verify and an end-of-job scrub.
    integrity: "IntegritySpec | None" = None

    def __post_init__(self) -> None:
        if self.cb_buffer_size < 2:
            raise ConfigurationError("cb_buffer_size must be >= 2 bytes")
        if self.num_aggregators is not None and self.num_aggregators < 1:
            raise ConfigurationError("num_aggregators must be >= 1 or None")
        if self.two_layer not in (True, False, "auto"):
            raise ConfigurationError(
                f"two_layer must be True, False or 'auto', got {self.two_layer!r}"
            )
        for field_name in (
            "pack_overhead_per_extent",
            "unpack_overhead_per_extent",
            "cycle_planning_overhead",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")
        if self.staging is not None:
            from repro.staging.spec import StagingSpec  # local: layering

            if not isinstance(self.staging, StagingSpec):
                raise ConfigurationError(
                    f"staging must be a StagingSpec or None, "
                    f"got {type(self.staging).__name__}"
                )
        if self.integrity is not None:
            from repro.integrity.spec import IntegritySpec  # local: layering

            if not isinstance(self.integrity, IntegritySpec):
                raise ConfigurationError(
                    f"integrity must be an IntegritySpec or None, "
                    f"got {type(self.integrity).__name__}"
                )

    @classmethod
    def for_scale(cls, scale: int = DEFAULT_SCALE, **overrides) -> "CollectiveConfig":
        """Config with the paper's 32 MB buffer and per-extent CPU costs
        scaled by ``scale`` (time constants compress with data sizes so
        every ratio matches the full-size run)."""
        defaults = cls()
        overrides.setdefault("cb_buffer_size", scaled(CB_BUFFER_SIZE_UNSCALED, scale))
        overrides.setdefault("pack_overhead_per_extent", defaults.pack_overhead_per_extent / scale)
        overrides.setdefault(
            "unpack_overhead_per_extent", defaults.unpack_overhead_per_extent / scale
        )
        overrides.setdefault("cycle_planning_overhead", defaults.cycle_planning_overhead / scale)
        return cls(**overrides)

    def with_(self, **overrides) -> "CollectiveConfig":
        return replace(self, **overrides)

    def cache_key(self) -> dict:
        """Canonical plain-data form for stable hashing.

        Used by :mod:`repro.tune` to key persistent caches: every field
        that influences simulated timing participates.  ``retry`` is a
        nested policy object, so its ``repr`` stands in for it;
        ``staging`` is a dataclass of scalars, so ``asdict`` already
        flattened it.
        """
        key = asdict(self)
        key["retry"] = None if self.retry is None else repr(self.retry)
        return key
