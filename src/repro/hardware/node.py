"""A compute node: cores plus a memory engine for intra-node transfers."""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.resources import ServerQueue

__all__ = ["Node"]


class Node:
    """One compute node of the cluster.

    ``memory`` is a serialized engine modelling the shared-memory copy
    bandwidth used by intra-node MPI messages (and by the local buffer
    packing of the two-phase algorithm if enabled).
    """

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        cores: int,
        memory_bandwidth: float,
        memory_latency: float,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.cores = cores
        self.memory = ServerQueue(
            engine,
            bandwidth=memory_bandwidth,
            latency=memory_latency,
            name=f"node{node_id}.mem",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} cores={self.cores}>"
