"""Cluster specification and runtime instantiation."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.hardware.fabric import Fabric
from repro.hardware.nic import Nic
from repro.hardware.node import Node
from repro.units import GiB, MB, US

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster (hardware + MPI library parameters).

    Data-size-like fields (``eager_threshold``) are expected to be given
    *already scaled* by the preset factories; see :mod:`repro.config`.
    """

    name: str
    num_nodes: int
    cores_per_node: int
    #: Per-NIC injection bandwidth, bytes/s (paper: ~2.6 GB/s crill, ~3.4 GB/s ibex).
    network_bandwidth: float
    #: One-way wire latency for inter-node messages, seconds.
    network_latency: float = 1.5 * US
    #: Intra-node (shared-memory) copy bandwidth, bytes/s.
    memory_bandwidth: float = 6_000 * MB
    #: Fixed software latency of an intra-node message, seconds.
    memory_latency: float = 0.4 * US

    # --- MPI library parameters (Open MPI master + UCX 1.6.1 in the paper) ---
    #: Messages below this size use the eager protocol (paper: 512 KiB; scaled).
    eager_threshold: int = 8192
    #: Fixed CPU overhead of entering any MPI call, seconds.
    mpi_call_overhead: float = 0.3 * US
    #: Cost of scanning one entry of the unexpected-message queue, seconds.
    match_cost_per_entry: float = 0.05 * US
    #: Fixed cost of posting/initiating one RMA Put (descriptor, registration cache hit).
    rma_put_overhead: float = 0.2 * US
    #: Per-origin lock/unlock round-trip overhead for passive-target RMA, seconds.
    rma_lock_overhead: float = 1.0 * US
    #: Whether the MPI library runs an asynchronous progress thread.
    progress_thread: bool = False

    # --- noise (shared vs dedicated system) ---
    #: Log-normal sigma applied to network transfer durations.
    network_noise_sigma: float = 0.0
    #: Log-normal sigma applied to storage service times (used by fs layer).
    storage_noise_sigma: float = 0.0

    #: Memory per node, bytes (not enforced; recorded for documentation).
    memory_per_node: int = 64 * GiB

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ConfigurationError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.network_bandwidth <= 0:
            raise ConfigurationError("network_bandwidth must be positive")
        if self.eager_threshold < 0:
            raise ConfigurationError("eager_threshold must be >= 0")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    def with_(self, **overrides) -> "ClusterSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    #: Fixed time constants that shrink together with data sizes so a
    #: scaled simulation is the full-size run with a compressed time unit
    #: (every latency/bandwidth ratio preserved exactly).
    TIME_FIELDS = (
        "network_latency",
        "memory_latency",
        "mpi_call_overhead",
        "match_cost_per_entry",
        "rma_put_overhead",
        "rma_lock_overhead",
    )

    def with_time_scale(self, scale: int) -> "ClusterSpec":
        """Divide every fixed time constant by ``scale`` (see above)."""
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        return replace(self, **{f: getattr(self, f) / scale for f in self.TIME_FIELDS})


class Cluster:
    """A :class:`ClusterSpec` instantiated on a simulation engine.

    Provides the node/NIC objects, the fabric, the rank→node placement
    (block mapping, as ``mpirun`` defaults to) and shared RNG/trace
    facilities for all higher layers.
    """

    def __init__(
        self,
        engine: Engine,
        spec: ClusterSpec,
        seed: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.rng = RngStreams(seed)
        #: Shared tracer for all layers; pass a
        #: :class:`repro.obs.span.SpanRecorder` to capture span timelines.
        self.tracer = tracer if tracer is not None else Tracer()
        net_noise = (
            self.rng.lognormal_noise("network", spec.network_noise_sigma)
            if spec.network_noise_sigma > 0
            else None
        )
        self.nodes = [
            Node(
                engine,
                node_id=i,
                cores=spec.cores_per_node,
                memory_bandwidth=spec.memory_bandwidth,
                memory_latency=spec.memory_latency,
            )
            for i in range(spec.num_nodes)
        ]
        self.nics = [
            Nic(engine, node_id=i, bandwidth=spec.network_bandwidth)
            for i in range(spec.num_nodes)
        ]
        self.fabric = Fabric(
            engine,
            self.nodes,
            self.nics,
            wire_latency=spec.network_latency,
            intra_node_latency=spec.memory_latency,
            noise=net_noise,
        )

    def node_of_rank(self, rank: int) -> int:
        """Block placement: ranks fill node 0's cores, then node 1's, ..."""
        if rank < 0:
            raise ValueError(f"negative rank: {rank}")
        node = rank // self.spec.cores_per_node
        if node >= self.spec.num_nodes:
            raise ConfigurationError(
                f"rank {rank} does not fit on {self.spec.num_nodes} nodes of "
                f"{self.spec.cores_per_node} cores"
            )
        return node

    def max_ranks(self) -> int:
        return self.spec.total_cores
