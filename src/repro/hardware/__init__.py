"""Cluster hardware model: nodes, NICs and the network fabric.

The model is deliberately at the LogGP level of abstraction: a message
from node *A* to node *B* occupies A's injection port and B's reception
port for ``size / bandwidth`` seconds (cut-through, no store-and-forward
per switch hop) and arrives one wire latency later.  Intra-node transfers
go through the node's memory engine instead.  The interconnect core is
assumed to have full bisection bandwidth (the QDR InfiniBand fat-trees of
the paper's clusters are close to that), so NIC endpoints are the only
network contention points.
"""

from repro.hardware.cluster import Cluster, ClusterSpec
from repro.hardware.fabric import Fabric
from repro.hardware.nic import Nic
from repro.hardware.node import Node
from repro.hardware.presets import crill, ibex, preset, PRESETS

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Fabric",
    "Nic",
    "Node",
    "crill",
    "ibex",
    "preset",
    "PRESETS",
]
