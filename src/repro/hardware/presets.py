"""Cluster presets matching the paper's two evaluation platforms.

Section IV of the paper:

*crill* (University of Houston): 16 nodes, 4x 12-core AMD Opteron
(Magny-Cours) per node (48 cores/node, 768 total), 64 GB/node, QDR
InfiniBand + UCX 1.6.1 with ~2.6 GB/s measured inter-node bandwidth, used
**dedicated** (very low run-to-run variance).  Its BeeGFS is built from two
extra HDDs in each of the 16 compute nodes — slow storage, so collective
writes are heavily I/O-dominated (93% I/O at 576 procs for Tile-1M).

*Ibex* (KAUST): Skylake partition, 108 nodes with 40-core Xeon Gold 6148,
376 GB/node, same QDR+UCX fabric but ~3.4 GB/s measured inter-node
bandwidth, **shared** with other users (larger variance).  Its BeeGFS is a
large dedicated storage system (3.6 PB, 16 storage targets) with far higher
write bandwidth, so the communication share is larger (~23% at 576 procs)
— which is exactly why overlap helps more there.

The UCX eager→rendezvous switch at 512 KiB is scaled along with all data
sizes (:mod:`repro.config`).
"""

from __future__ import annotations

from repro.config import DEFAULT_SCALE, scaled
from repro.hardware.cluster import ClusterSpec
from repro.units import GiB, KiB, MB, US

__all__ = ["crill", "ibex", "preset", "PRESETS"]

#: UCX switches from eager to rendezvous at 512 KiB (paper, Sec. III-B1).
EAGER_THRESHOLD_UNSCALED: int = 512 * KiB


def crill(scale: int = DEFAULT_SCALE) -> ClusterSpec:
    """The dedicated *crill* cluster at the University of Houston."""
    return ClusterSpec(
        name="crill",
        num_nodes=16,
        cores_per_node=48,
        network_bandwidth=2_600 * MB,
        network_latency=1.9 * US,  # older Magny-Cours hosts: slightly higher
        memory_bandwidth=5_000 * MB,
        eager_threshold=scaled(EAGER_THRESHOLD_UNSCALED, scale),
        network_noise_sigma=0.02,  # dedicated system: near-deterministic
        storage_noise_sigma=0.05,
        memory_per_node=64 * GiB,
    ).with_time_scale(scale)


def ibex(scale: int = DEFAULT_SCALE) -> ClusterSpec:
    """The shared *Ibex* Skylake partition at KAUST."""
    return ClusterSpec(
        name="ibex",
        num_nodes=108,
        cores_per_node=40,
        network_bandwidth=3_400 * MB,
        network_latency=1.4 * US,
        memory_bandwidth=9_000 * MB,
        eager_threshold=scaled(EAGER_THRESHOLD_UNSCALED, scale),
        network_noise_sigma=0.12,  # shared system: visible variance
        storage_noise_sigma=0.22,
        memory_per_node=376 * GiB,
    ).with_time_scale(scale)


PRESETS = {"crill": crill, "ibex": ibex}


def preset(name: str, scale: int = DEFAULT_SCALE) -> ClusterSpec:
    """Look up a cluster preset by name (``'crill'`` or ``'ibex'``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown cluster preset {name!r}; known: {sorted(PRESETS)}") from None
    return factory(scale=scale)
