"""The network fabric: point-to-point transfers between nodes.

Transfer model (LogGP-flavoured, cut-through):

* inter-node: the transfer starts when *both* the sender's tx port and the
  receiver's rx port are free; both ports are held for
  ``size / min(tx.bw, rx.bw)`` seconds (optionally stretched by the
  cluster's network noise), and the data is fully visible at the receiver
  one wire latency after the ports drain.
* intra-node: a single reservation of the node's memory engine.

The fabric is purely a data-movement model; *when* a transfer may start
(matching, rendezvous handshakes, RMA synchronization) is the MPI layer's
job.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine, Timeout
from repro.hardware.nic import Nic
from repro.hardware.node import Node

__all__ = ["Fabric"]


class Fabric:
    """Moves bytes between nodes, modelling endpoint contention."""

    def __init__(
        self,
        engine: Engine,
        nodes: list[Node],
        nics: list[Nic],
        wire_latency: float,
        intra_node_latency: float,
        noise: Callable[[], float] | None = None,
    ) -> None:
        if len(nodes) != len(nics):
            raise ValueError("need exactly one NIC per node")
        self.engine = engine
        self.nodes = nodes
        self.nics = nics
        self.wire_latency = float(wire_latency)
        self.intra_node_latency = float(intra_node_latency)
        self.noise = noise
        #: Cumulative inter-node bytes moved (accounting/diagnostics).
        self.inter_node_bytes = 0
        self.intra_node_bytes = 0

    def transfer(self, src_node: int, dst_node: int, size: int) -> Timeout:
        """Start moving ``size`` bytes; returns the arrival-complete event.

        The returned event fires when the last byte is visible at the
        destination.  Contention with other transfers sharing either
        endpoint is accounted for via the port queues.
        """
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        eng = self.engine
        if src_node == dst_node:
            self.intra_node_bytes += size
            node = self.nodes[src_node]
            done = node.memory.submit(size)
            if self.intra_node_latency:
                # submit() already charges the memory engine's own latency;
                # an extra fixed software overhead can be folded in here.
                pass
            return done
        self.inter_node_bytes += size
        tx = self.nics[src_node].tx
        rx = self.nics[dst_node].rx
        bandwidth = min(tx.bandwidth, rx.bandwidth)
        duration = size / bandwidth
        if self.noise is not None:
            duration *= self.noise()
        start = max(tx.earliest_start(), rx.earliest_start(), eng.now)
        tx.occupy(start, duration, size)
        rx.occupy(start, duration, size)
        finish = start + duration + self.wire_latency
        return eng.timeout(finish - eng.now, value=finish)

    def transfer_time_estimate(self, src_node: int, dst_node: int, size: int) -> float:
        """Uncontended transfer time estimate (used by planners, not physics)."""
        if src_node == dst_node:
            node = self.nodes[src_node]
            return node.memory.service_time(size)
        bw = min(self.nics[src_node].tx.bandwidth, self.nics[dst_node].rx.bandwidth)
        return self.wire_latency + size / bw
