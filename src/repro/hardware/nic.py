"""Network interface with independent injection (tx) and reception (rx) ports."""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine
from repro.sim.resources import ServerQueue

__all__ = ["Nic"]


class Nic:
    """A full-duplex NIC: one serialized port per direction.

    A point-to-point transfer reserves the sender's ``tx`` port and the
    receiver's ``rx`` port for the same interval (see
    :meth:`repro.hardware.fabric.Fabric.transfer`), which models both
    injection-side and drain-side contention — the latter is what makes a
    busy aggregator the bottleneck of the shuffle phase.
    """

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        bandwidth: float,
        noise: Callable[[], float] | None = None,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.bandwidth = float(bandwidth)
        self.tx = ServerQueue(engine, bandwidth=bandwidth, noise=noise, name=f"nic{node_id}.tx")
        self.rx = ServerQueue(engine, bandwidth=bandwidth, noise=noise, name=f"nic{node_id}.rx")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Nic node={self.node_id} bw={self.bandwidth:.3g}>"
